package rib

import (
	"net/netip"
	"testing"

	"vns/internal/bgp"
	"vns/internal/loss"
)

// routeFor builds a deterministic candidate for prefix from peer n,
// with a local pref knob so tests can order candidates precisely.
func routeFor(pfx netip.Prefix, peer int, lp uint32) *Route {
	id := netip.AddrFrom4([4]byte{10, 0, 0, byte(peer)})
	return &Route{
		Prefix:   pfx,
		Attrs:    bgp.Attrs{LocalPref: lp, HasLocalPref: true, NextHop: id},
		EBGP:     true,
		PeerAS:   uint16(100 + peer),
		PeerID:   id,
		PeerAddr: id,
	}
}

// TestApplyBatchIncremental is the table-driven incremental-recompute
// suite: each case sets up a two-candidate prefix (peer 1 at lp 200
// best, peer 2 at lp 100 backup) and applies one batch, checking the
// changed-set and resulting best against what sequential Upsert/
// Withdraw semantics require.
func TestApplyBatchIncremental(t *testing.T) {
	pfx := prefix("203.0.113.0/24")
	other := prefix("198.51.100.0/24")
	cases := []struct {
		name        string
		ops         func() []Op
		wantChanged []netip.Prefix
		wantBest    int // peer number of expected best; 0 = prefix gone
	}{
		{
			name: "withdraw-of-best",
			ops: func() []Op {
				r := routeFor(pfx, 1, 200)
				return []Op{WithdrawOp(pfx, r.PeerID, r.PeerAddr)}
			},
			wantChanged: []netip.Prefix{pfx},
			wantBest:    2,
		},
		{
			name: "withdraw-of-backup-no-change",
			ops: func() []Op {
				r := routeFor(pfx, 2, 100)
				return []Op{WithdrawOp(pfx, r.PeerID, r.PeerAddr)}
			},
			wantChanged: nil,
			wantBest:    1,
		},
		{
			name:        "announce-better",
			ops:         func() []Op { return []Op{Announce(routeFor(pfx, 3, 300))} },
			wantChanged: []netip.Prefix{pfx},
			wantBest:    3,
		},
		{
			name:        "announce-worse-no-change",
			ops:         func() []Op { return []Op{Announce(routeFor(pfx, 3, 50))} },
			wantChanged: nil,
			wantBest:    1,
		},
		{
			name:        "reannounce-identical-no-change",
			ops:         func() []Op { return []Op{Announce(routeFor(pfx, 1, 200))} },
			wantChanged: nil,
			wantBest:    1,
		},
		{
			name: "coalesce-announce-then-withdraw",
			ops: func() []Op {
				// Announce a would-be-best route and withdraw it in the
				// same batch: the withdrawal wins, nothing changes.
				r := routeFor(pfx, 3, 999)
				return []Op{Announce(r), WithdrawOp(pfx, r.PeerID, r.PeerAddr)}
			},
			wantChanged: nil,
			wantBest:    1,
		},
		{
			name: "coalesce-withdraw-then-reannounce",
			ops: func() []Op {
				// Withdraw the best and re-announce it identically in one
				// batch: last writer wins, best is unchanged by value.
				r := routeFor(pfx, 1, 200)
				return []Op{WithdrawOp(pfx, r.PeerID, r.PeerAddr), Announce(r)}
			},
			wantChanged: nil,
			wantBest:    1,
		},
		{
			name: "coalesce-flap-to-new-value",
			ops: func() []Op {
				// Multiple announces of the same slot in one batch: only
				// the final attributes land, one reselect, one change.
				return []Op{
					Announce(routeFor(pfx, 1, 300)),
					Announce(routeFor(pfx, 1, 400)),
					Announce(routeFor(pfx, 1, 500)),
				}
			},
			wantChanged: []netip.Prefix{pfx},
			wantBest:    1,
		},
		{
			name: "multi-prefix-sorted-changed-set",
			ops: func() []Op {
				return []Op{
					Announce(routeFor(pfx, 3, 900)),
					Announce(routeFor(other, 3, 900)),
				}
			},
			// 198.51.100.0/24 sorts before 203.0.113.0/24.
			wantChanged: []netip.Prefix{other, pfx},
			wantBest:    3,
		},
		{
			name: "withdraw-last-candidate-deletes-prefix",
			ops: func() []Op {
				r1, r2 := routeFor(pfx, 1, 200), routeFor(pfx, 2, 100)
				return []Op{
					WithdrawOp(pfx, r1.PeerID, r1.PeerAddr),
					WithdrawOp(pfx, r2.PeerID, r2.PeerAddr),
				}
			},
			wantChanged: []netip.Prefix{pfx},
			wantBest:    0,
		},
		{
			name: "withdraw-unknown-noop",
			ops: func() []Op {
				r := routeFor(pfx, 9, 0)
				return []Op{WithdrawOp(pfx, r.PeerID, r.PeerAddr)}
			},
			wantChanged: nil,
			wantBest:    1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := NewTable()
			tbl.Upsert(routeFor(pfx, 1, 200))
			tbl.Upsert(routeFor(pfx, 2, 100))

			changed := tbl.ApplyBatch(tc.ops())
			if len(changed) != len(tc.wantChanged) {
				t.Fatalf("changed = %v, want %v", changed, tc.wantChanged)
			}
			for i := range changed {
				if changed[i] != tc.wantChanged[i] {
					t.Fatalf("changed = %v, want %v", changed, tc.wantChanged)
				}
			}
			best := tbl.Best(pfx)
			if tc.wantBest == 0 {
				if best != nil {
					t.Fatalf("best = %v, want prefix deleted", best)
				}
				if tbl.Len() != 0 {
					t.Errorf("Len() = %d, want 0", tbl.Len())
				}
				return
			}
			wantID := netip.AddrFrom4([4]byte{10, 0, 0, byte(tc.wantBest)})
			if best == nil || best.PeerID != wantID {
				t.Fatalf("best = %v, want peer %d", best, tc.wantBest)
			}
		})
	}
}

// TestApplyBatchMatchesSequential cross-checks batched application
// against op-at-a-time Upsert/Withdraw on randomized workloads: same
// final table, and the batch's changed-set equal to the set of prefixes
// whose best differed between the two table states before and after.
func TestApplyBatchMatchesSequential(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := loss.NewRNG(seed)
		batched, sequential := NewTable(), NewTable()
		for round := 0; round < 50; round++ {
			ops := randomOps(rng, 1+int(rng.Float64()*20))
			// Sequential ground truth: ops applied one at a time, in
			// order (later ops on the same slot naturally supersede).
			for _, op := range ops {
				if op.Route != nil {
					sequential.Upsert(op.Route)
				} else {
					sequential.Withdraw(op.Prefix, op.PeerID, op.PeerAddr)
				}
			}
			changed := batched.ApplyBatch(ops)
			assertTablesEqual(t, batched, sequential)
			// Every changed prefix's best must exist in agreement;
			// non-reported touched prefixes must be value-identical too —
			// covered by the full-table comparison above. Verify the
			// changed list is sorted and duplicate-free.
			for i := 1; i < len(changed); i++ {
				if c := comparePrefixes(changed[i-1], changed[i]); c >= 0 {
					t.Fatalf("seed %d round %d: changed-set not strictly sorted: %v", seed, round, changed)
				}
			}
		}
	}
}

func comparePrefixes(a, b netip.Prefix) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}

// randomOps builds a batch over a clustered universe of prefixes and
// peers so replacements, withdrawals of absent slots, and intra-batch
// flaps all occur.
func randomOps(rng *loss.RNG, n int) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		pfx := netip.PrefixFrom(
			netip.AddrFrom4([4]byte{byte(10 + int(rng.Float64()*4)), byte(rng.Float64() * 8), byte(rng.Float64() * 4 * 64), 0}),
			16+int(rng.Float64()*9),
		).Masked()
		peer := 1 + int(rng.Float64()*5)
		if rng.Float64() < 0.35 {
			id := netip.AddrFrom4([4]byte{10, 0, 0, byte(peer)})
			ops = append(ops, WithdrawOp(pfx, id, id))
			continue
		}
		ops = append(ops, Announce(routeFor(pfx, peer, uint32(100+int(rng.Float64()*400)))))
	}
	return ops
}

// ribLike is the read surface Table and ShardedTable share, for
// equivalence assertions.
type ribLike interface {
	Len() int
	Prefixes() []netip.Prefix
	Best(netip.Prefix) *Route
	Candidates(netip.Prefix) []*Route
}

// assertTablesEqual requires byte-match equivalence: same prefix list
// in the same order, same best route by value, same candidate sets.
func assertTablesEqual(t *testing.T, got, want ribLike) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len: got %d, want %d", got.Len(), want.Len())
	}
	gp, wp := got.Prefixes(), want.Prefixes()
	if len(gp) != len(wp) {
		t.Fatalf("Prefixes: got %d, want %d", len(gp), len(wp))
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("Prefixes[%d]: got %v, want %v (order must match)", i, gp[i], wp[i])
		}
		if gb, wb := got.Best(gp[i]), want.Best(wp[i]); !gb.Equal(wb) {
			t.Fatalf("Best(%v): got %v, want %v", gp[i], gb, wb)
		}
		gc, wc := got.Candidates(gp[i]), want.Candidates(wp[i])
		if len(gc) != len(wc) {
			t.Fatalf("Candidates(%v): got %d, want %d", gp[i], len(gc), len(wc))
		}
		// Candidate insertion order can differ between batched and
		// sequential application (coalescing skips superseded inserts),
		// so match as a set keyed by peer slot.
		bySlot := make(map[opKey]*Route, len(wc))
		for _, r := range wc {
			bySlot[opKey{r.Prefix, r.PeerID, r.PeerAddr}] = r
		}
		for _, r := range gc {
			if !r.Equal(bySlot[opKey{r.Prefix, r.PeerID, r.PeerAddr}]) {
				t.Fatalf("Candidates(%v): route %v differs from sequential", gp[i], r)
			}
		}
	}
}

// TestShardedMatchesSequential is the sharded-vs-sequential decision
// equivalence oracle (run under -race in CI): identical batches fed to
// a ShardedTable and a plain Table must produce identical changed-sets,
// identical iteration order, and value-identical routes.
func TestShardedMatchesSequential(t *testing.T) {
	for _, nshards := range []int{1, 2, 4, 7} {
		for seed := uint64(1); seed <= 3; seed++ {
			rng := loss.NewRNG(seed)
			sharded := NewSharded(nshards)
			sequential := NewTable()
			for round := 0; round < 40; round++ {
				ops := randomOps(rng, 1+int(rng.Float64()*30))
				gotChanged := sharded.ApplyBatch(ops)
				wantChanged := sequential.ApplyBatch(ops)
				if len(gotChanged) != len(wantChanged) {
					t.Fatalf("shards=%d seed=%d round=%d: changed %v, want %v", nshards, seed, round, gotChanged, wantChanged)
				}
				for i := range gotChanged {
					if gotChanged[i] != wantChanged[i] {
						t.Fatalf("shards=%d seed=%d round=%d: changed[%d]=%v, want %v", nshards, seed, round, i, gotChanged[i], wantChanged[i])
					}
				}
				assertTablesEqual(t, sharded, sequential)
			}
			// Reference LPM must agree across implementations too.
			for i := 0; i < 200; i++ {
				a := netip.AddrFrom4([4]byte{byte(10 + int(rng.Float64()*4)), byte(rng.Float64() * 8), byte(rng.Float64() * 256), byte(rng.Float64() * 256)})
				gb, wb := sharded.Lookup(a), sequential.Lookup(a)
				if !gb.Equal(wb) {
					t.Fatalf("shards=%d seed=%d: Lookup(%v) = %v, want %v", nshards, seed, a, gb, wb)
				}
			}
		}
	}
}

// TestShardedUpsertWithdrawDelegation covers the non-batched sharded
// path and the cross-shard reference Lookup (a short covering prefix
// living in a different shard than the probed address's own range).
func TestShardedUpsertWithdrawDelegation(t *testing.T) {
	s := NewSharded(4)
	cover := routeFor(prefix("10.0.0.0/8"), 1, 100)
	specific := routeFor(prefix("10.200.0.0/16"), 2, 100)
	if !s.Upsert(cover) || !s.Upsert(specific) {
		t.Fatal("fresh upserts must report best change")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.Lookup(addr("10.200.1.1")); got == nil || got.PeerID != specific.PeerID {
		t.Fatalf("Lookup inside /16 = %v, want the more specific", got)
	}
	if got := s.Lookup(addr("10.1.1.1")); got == nil || got.PeerID != cover.PeerID {
		t.Fatalf("Lookup outside /16 = %v, want the /8 cover", got)
	}
	if !s.Withdraw(specific.Prefix, specific.PeerID, specific.PeerAddr) {
		t.Fatal("withdraw of only candidate must report change")
	}
	if got := s.Lookup(addr("10.200.1.1")); got == nil || got.PeerID != cover.PeerID {
		t.Fatalf("after withdraw: Lookup = %v, want the /8 cover", got)
	}
	if s.BestExternal(cover.Prefix) == nil {
		t.Error("BestExternal delegation returned nil for an eBGP route")
	}
}

// TestShardedWalkBestStops pins early termination across shard
// boundaries.
func TestShardedWalkBestStops(t *testing.T) {
	s := NewSharded(8)
	for i := 0; i < 32; i++ {
		s.Upsert(routeFor(netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i * 8), 0, 0, 0}), 16), 1, 100))
	}
	seen := 0
	s.WalkBest(func(*Route) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Errorf("walk visited %d, want 5 (stop honored)", seen)
	}
}

// BenchmarkRIBChurn measures batched UPDATE churn against a full-scale
// table: each op is a batch of 16 announce/withdraw transitions over a
// 100k-prefix Loc-RIB with 4 candidates per prefix, the coalesce +
// incremental-reselect path a route reflector runs per burst.
func BenchmarkRIBChurn(b *testing.B) {
	rng := loss.NewRNG(0x51B)
	tbl := NewTable()
	prefixes := make([]netip.Prefix, 0, 100_000)
	for a := 0; a < 2; a++ {
		for x := 0; x < 196; x++ {
			for y := 0; y < 255 && len(prefixes) < 100_000; y++ {
				pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(20 + a), byte(x), byte(y), 0}), 24)
				prefixes = append(prefixes, pfx)
				for peer := 1; peer <= 4; peer++ {
					tbl.Upsert(routeFor(pfx, peer, uint32(100+peer)))
				}
			}
		}
	}
	b.ReportMetric(float64(tbl.Len()), "prefixes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := make([]Op, 0, 16)
		for j := 0; j < 16; j++ {
			pfx := prefixes[int(rng.Float64()*float64(len(prefixes)))]
			peer := 1 + (i+j)%4
			if j%4 == 0 {
				id := netip.AddrFrom4([4]byte{10, 0, 0, byte(peer)})
				ops = append(ops, WithdrawOp(pfx, id, id))
			} else {
				ops = append(ops, Announce(routeFor(pfx, peer, uint32(100+(i+j)%400))))
			}
		}
		tbl.ApplyBatch(ops)
	}
}

// BenchmarkShardedRIBChurn is BenchmarkRIBChurn through a ShardedTable
// at GOMAXPROCS shards — the ratio is the sharding speedup (≈1 on a
// single-core runner, where it mostly measures spawn overhead).
func BenchmarkShardedRIBChurn(b *testing.B) {
	rng := loss.NewRNG(0x51B)
	tbl := NewSharded(0)
	prefixes := make([]netip.Prefix, 0, 100_000)
	for a := 0; a < 2; a++ {
		for x := 0; x < 196; x++ {
			for y := 0; y < 255 && len(prefixes) < 100_000; y++ {
				pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(20 + a), byte(x), byte(y), 0}), 24)
				prefixes = append(prefixes, pfx)
				for peer := 1; peer <= 4; peer++ {
					tbl.Upsert(routeFor(pfx, peer, uint32(100+peer)))
				}
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := make([]Op, 0, 16)
		for j := 0; j < 16; j++ {
			pfx := prefixes[int(rng.Float64()*float64(len(prefixes)))]
			peer := 1 + (i+j)%4
			if j%4 == 0 {
				id := netip.AddrFrom4([4]byte{10, 0, 0, byte(peer)})
				ops = append(ops, WithdrawOp(pfx, id, id))
			} else {
				ops = append(ops, Announce(routeFor(pfx, peer, uint32(100+(i+j)%400))))
			}
		}
		tbl.ApplyBatch(ops)
	}
}
