package rib

import (
	"net/netip"
	"testing"

	"vns/internal/bgp"
)

// decisionRoute builds a Route for the decision-process table below. The
// base route is deliberately mid-range at every step so a test case can
// make either candidate win by moving one attribute in either direction.
func decisionRoute(mut func(*Route)) *Route {
	r := &Route{
		Prefix: prefix("203.0.113.0/24"),
		Attrs: bgp.Attrs{
			ASPath:       []bgp.ASPathSegment{{ASNs: []uint16{100, 200}}},
			Origin:       bgp.OriginEGP,
			HasLocalPref: true,
			LocalPref:    100,
			HasMED:       true,
			MED:          50,
		},
		EBGP:      false,
		PeerAS:    100,
		PeerID:    addr("10.0.5.5"),
		PeerAddr:  addr("192.0.2.5"),
		IGPMetric: 40,
	}
	if mut != nil {
		mut(r)
	}
	return r
}

// TestDecisionProcessTable walks the full RFC 4271 §9.1.2.2 order (plus
// the RFC 4456 refinements) one step at a time. In every case the two
// candidates are identical except for the step under test and every step
// *below* it, where b is made strictly better — proving the step under
// test actually dominates everything after it rather than winning by
// coincidence.
func TestDecisionProcessTable(t *testing.T) {
	cases := []struct {
		name string
		a    func(*Route) // mutation making a win at the step under test
		b    func(*Route) // mutation making b win at every later step
	}{
		{
			name: "local-pref beats shorter as-path",
			a:    func(r *Route) { r.Attrs.LocalPref = 200 },
			b:    func(r *Route) { r.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: []uint16{100}}} },
		},
		{
			name: "as-path length beats origin",
			a:    func(r *Route) { r.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: []uint16{100}}} },
			b:    func(r *Route) { r.Attrs.Origin = bgp.OriginIGP },
		},
		{
			name: "as-set counts one regardless of size",
			a: func(r *Route) {
				// SEQ(100) + SET(5 ASNs) counts as length 2, tying b's
				// plain two-hop path; a then wins at the origin step. If
				// the SET's members each counted, a would lose on length
				// and never reach origin.
				r.Attrs.ASPath = []bgp.ASPathSegment{
					{ASNs: []uint16{100}},
					{Set: true, ASNs: []uint16{1, 2, 3, 4, 5}},
				}
				r.Attrs.Origin = bgp.OriginIGP
			},
			b: func(r *Route) { r.Attrs.MED = 10 },
		},
		{
			name: "origin beats med",
			a:    func(r *Route) { r.Attrs.Origin = bgp.OriginIGP },
			b:    func(r *Route) { r.Attrs.MED = 10 },
		},
		{
			name: "med beats ebgp-over-ibgp",
			a:    func(r *Route) { r.Attrs.MED = 10 },
			b:    func(r *Route) { r.EBGP = true },
		},
		{
			name: "missing med treated as zero",
			a:    func(r *Route) { r.Attrs.HasMED = false },
			b:    func(r *Route) { r.Attrs.MED = 10; r.EBGP = true },
		},
		{
			name: "ebgp beats igp metric",
			a:    func(r *Route) { r.EBGP = true },
			b:    func(r *Route) { r.IGPMetric = 1 },
		},
		{
			name: "igp metric beats cluster-list length",
			a:    func(r *Route) { r.IGPMetric = 10 },
			b:    func(r *Route) { /* a gains a cluster hop below */ },
		},
		{
			name: "cluster-list beats router-id",
			a:    func(r *Route) { r.Attrs.ClusterList = []netip.Addr{addr("10.0.9.9")} },
			b: func(r *Route) {
				r.Attrs.ClusterList = []netip.Addr{addr("10.0.9.9"), addr("10.0.8.8")}
				r.PeerID = addr("10.0.1.1")
			},
		},
		{
			name: "originator-id substitutes for router-id",
			a:    func(r *Route) { r.Attrs.OriginatorID = addr("10.0.1.1"); r.PeerID = addr("10.0.9.9") },
			b:    func(r *Route) { r.PeerID = addr("10.0.2.2"); r.PeerAddr = addr("192.0.2.1") },
		},
		{
			name: "router-id beats peer address",
			a:    func(r *Route) { r.PeerID = addr("10.0.1.1") },
			b:    func(r *Route) { r.PeerID = addr("10.0.2.2"); r.PeerAddr = addr("192.0.2.1") },
		},
		{
			name: "peer address is the final tiebreak",
			a:    func(r *Route) { r.PeerAddr = addr("192.0.2.1") },
			b:    func(r *Route) { r.PeerAddr = addr("192.0.2.9") },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := decisionRoute(tc.a)
			b := decisionRoute(tc.b)
			if got := Compare(a, b); got >= 0 {
				t.Fatalf("Compare(a, b) = %d, want a preferred\n  a: %v\n  b: %v", got, a, b)
			}
			if got := Compare(b, a); got <= 0 {
				t.Fatalf("Compare(b, a) = %d, want asymmetry", got)
			}
			if got := Best([]*Route{b, a}); got != a {
				t.Fatalf("Best chose %v, want %v", got, a)
			}
		})
	}
}

// TestDecisionMEDOnlyWithinSameAS: MED is comparable only between routes
// from the same neighboring AS; across ASes the step is skipped entirely
// and the next step (eBGP-over-iBGP here) decides.
func TestDecisionMEDOnlyWithinSameAS(t *testing.T) {
	worseMED := decisionRoute(func(r *Route) {
		r.Attrs.MED = 500
		r.PeerAS = 300
		r.EBGP = true
	})
	betterMED := decisionRoute(func(r *Route) { r.Attrs.MED = 10 })
	if Compare(worseMED, betterMED) >= 0 {
		t.Fatalf("cross-AS MED was compared: %v should beat %v on eBGP", worseMED, betterMED)
	}

	sameAS := decisionRoute(func(r *Route) { r.Attrs.MED = 500; r.EBGP = true })
	if Compare(betterMED, sameAS) >= 0 {
		t.Fatalf("same-AS MED not compared: %v should beat %v on MED", betterMED, sameAS)
	}
}

// TestDecisionCompareEqualRoutes: indistinguishable routes compare 0 and
// Best resolves the tie to the earliest candidate.
func TestDecisionCompareEqualRoutes(t *testing.T) {
	a, b := decisionRoute(nil), decisionRoute(nil)
	if got := Compare(a, b); got != 0 {
		t.Fatalf("Compare of identical routes = %d, want 0", got)
	}
	if got := Best([]*Route{a, b}); got != a {
		t.Fatal("Best did not resolve a tie to the earliest candidate")
	}
}

// TestReselectValueCompareRegression pins the PR-1 fix: replacing the
// best path with an attribute-identical re-announcement (a *new* Route
// pointer from a periodic refresh) must NOT report a best-path change,
// while a genuinely different announcement from the same peer must.
// Before the fix, reselect compared pointers, so every refresh rippled
// into re-advertisement and FIB recompiles.
func TestReselectValueCompareRegression(t *testing.T) {
	tbl := NewTable()
	orig := decisionRoute(nil)
	if !tbl.Upsert(orig) {
		t.Fatal("first route did not change best")
	}

	refresh := orig.Clone() // same value, different pointer
	if tbl.Upsert(refresh) {
		t.Fatal("attribute-identical re-announcement reported a best-path change")
	}
	if tbl.Best(orig.Prefix) != refresh {
		t.Fatal("refresh was not installed as the current best")
	}

	changed := refresh.Clone()
	changed.Attrs.MED = 999
	if !tbl.Upsert(changed) {
		t.Fatal("genuinely changed announcement did not report a best-path change")
	}

	// Same peer re-announcing the *old* value again: the best flips back,
	// and that is a change even though the value matches a historic best.
	if !tbl.Upsert(orig.Clone()) {
		t.Fatal("reverting announcement did not report a best-path change")
	}
}

// TestReselectLosingRouteRefresh: a refresh of a non-best candidate must
// not report a change either — the best path's value is untouched.
func TestReselectLosingRouteRefresh(t *testing.T) {
	tbl := NewTable()
	best := decisionRoute(func(r *Route) { r.Attrs.LocalPref = 200 })
	loser := decisionRoute(func(r *Route) {
		r.PeerID = addr("10.0.7.7")
		r.PeerAddr = addr("192.0.2.7")
	})
	tbl.Upsert(best)
	if tbl.Upsert(loser) {
		t.Fatal("losing candidate reported a best-path change")
	}
	if tbl.Upsert(loser.Clone()) {
		t.Fatal("refresh of losing candidate reported a best-path change")
	}
	if got := tbl.Best(best.Prefix); got != best {
		t.Fatalf("best = %v, want %v", got, best)
	}
}

// TestWithdrawReselect: withdrawing the best promotes the runner-up and
// reports a change; withdrawing a loser does not.
func TestWithdrawReselect(t *testing.T) {
	tbl := NewTable()
	best := decisionRoute(func(r *Route) { r.Attrs.LocalPref = 200 })
	second := decisionRoute(func(r *Route) {
		r.PeerID = addr("10.0.7.7")
		r.PeerAddr = addr("192.0.2.7")
	})
	tbl.Upsert(best)
	tbl.Upsert(second)

	if tbl.Withdraw(best.Prefix, second.PeerID, second.PeerAddr) {
		t.Fatal("withdrawing the losing candidate reported a change")
	}
	tbl.Upsert(second)
	if !tbl.Withdraw(best.Prefix, best.PeerID, best.PeerAddr) {
		t.Fatal("withdrawing the best did not report a change")
	}
	if got := tbl.Best(best.Prefix); !got.Equal(second) {
		t.Fatalf("runner-up not promoted: best = %v", got)
	}
	if !tbl.Withdraw(best.Prefix, second.PeerID, second.PeerAddr) {
		t.Fatal("withdrawing the last candidate did not report a change")
	}
	if tbl.Len() != 0 {
		t.Fatalf("table still has %d prefixes after full withdrawal", tbl.Len())
	}
}
