package rib

import "vns/internal/telemetry"

// Metrics holds pre-resolved telemetry handles for one Loc-RIB, so the
// update path (Upsert/Withdraw per received UPDATE) pays atomic adds
// only. Attach with Table.SetMetrics; a table without metrics pays a
// single nil check per operation.
type Metrics struct {
	// Upserts and Withdraws count mutating operations that touched a
	// candidate; Reselects counts decision-process reruns; BestChanges
	// counts reselections whose best path changed by value (the events
	// that fan out as re-advertisements and FIB invalidations).
	Upserts     *telemetry.Counter
	Withdraws   *telemetry.Counter
	Reselects   *telemetry.Counter
	BestChanges *telemetry.Counter
	// Prefixes tracks the number of prefixes with at least one
	// candidate.
	Prefixes *telemetry.Gauge
}

// NewMetrics registers the RIB metric families in reg. Returns nil (a
// no-op) when reg is nil.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Upserts:     reg.Counter("rib_upserts_total", "route installs or replacements"),
		Withdraws:   reg.Counter("rib_withdraws_total", "candidate withdrawals that removed a route"),
		Reselects:   reg.Counter("rib_reselects_total", "decision-process reruns"),
		BestChanges: reg.Counter("rib_best_changes_total", "reselections whose best path changed by value"),
		Prefixes:    reg.Gauge("rib_prefixes_current", "prefixes with at least one candidate"),
	}
}

// SetMetrics attaches metrics to the table (nil detaches). Like the
// table itself it is not safe to call concurrently with mutations.
func (t *Table) SetMetrics(m *Metrics) { t.metrics = m }
