package rib

import (
	"net/netip"

	"vns/internal/bgp"
)

// ReflectionDecision says whether and how a route reflector re-advertises
// a route to a given peer (RFC 4456 §6):
//
//   - a route from a non-client is reflected to clients only;
//   - a route from a client is reflected to all other peers;
//   - a route is never reflected back to the router it came from.
func ShouldReflect(fromClient bool, toClient bool, fromPeer, toPeer netip.Addr) bool {
	if fromPeer == toPeer {
		return false
	}
	if fromClient {
		return true
	}
	return toClient
}

// Reflect prepares the attributes of a reflected route: it stamps the
// ORIGINATOR_ID with the originating router (if not already set) and
// prepends the reflector's cluster ID to the CLUSTER_LIST. The caller
// must already have checked HasClusterLoop to detect reflection loops.
func Reflect(attrs bgp.Attrs, originator, clusterID netip.Addr) bgp.Attrs {
	out := attrs.Clone()
	if !out.OriginatorID.IsValid() {
		out.OriginatorID = originator
	}
	out.ClusterList = append([]netip.Addr{clusterID}, out.ClusterList...)
	return out
}

// ExportToEBGP prepares attributes for advertisement over an external
// session: prepend the local AS, strip iBGP-only attributes
// (LOCAL_PREF, ORIGINATOR_ID, CLUSTER_LIST), and rewrite the next hop.
// It returns false if the route must not be exported (no-export /
// no-advertise communities).
func ExportToEBGP(attrs bgp.Attrs, localAS uint16, nextHop netip.Addr) (bgp.Attrs, bool) {
	if attrs.HasCommunity(bgp.CommunityNoExport) ||
		attrs.HasCommunity(bgp.CommunityNoAdvertise) {
		return bgp.Attrs{}, false
	}
	out := attrs.PrependAS(localAS)
	out.HasLocalPref = false
	out.LocalPref = 0
	out.OriginatorID = netip.Addr{}
	out.ClusterList = nil
	out.HasMED = false
	out.MED = 0
	out.NextHop = nextHop
	return out, true
}

// ExportToIBGP prepares attributes for advertisement over an internal
// session: the AS path and next hop are preserved; no-advertise blocks
// export entirely.
func ExportToIBGP(attrs bgp.Attrs) (bgp.Attrs, bool) {
	if attrs.HasCommunity(bgp.CommunityNoAdvertise) {
		return bgp.Attrs{}, false
	}
	return attrs.Clone(), true
}
