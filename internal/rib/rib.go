// Package rib implements BGP route storage and selection: routes with
// their learning context, the full RFC 4271 §9.1 decision process, a
// Loc-RIB table, and the RFC 4456 route-reflection rules including the
// best-external behaviour the paper enables to counter hidden routes.
//
// Both control planes use this package: the in-process experiment
// harness (internal/vns) and the wire-level daemon (cmd/vnsd).
package rib

import (
	"fmt"
	"net/netip"
	"sort"

	"vns/internal/bgp"
)

// DefaultLocalPref is the local preference assumed for routes that do
// not carry the attribute (RFC 4271 default practice, and the baseline
// the geo route reflector's values are "much higher" than).
const DefaultLocalPref = 100

// Route is one candidate path to a prefix together with the context it
// was learned in, which the decision process needs.
type Route struct {
	Prefix netip.Prefix
	Attrs  bgp.Attrs

	// EBGP reports whether the route was learned over an external
	// session.
	EBGP bool
	// PeerAS is the neighboring AS the route was learned from (0 for
	// locally originated routes).
	PeerAS uint16
	// PeerID is the BGP identifier of the advertising peer, the final
	// decision-process tiebreaker.
	PeerID netip.Addr
	// PeerAddr breaks ties between parallel sessions to the same router.
	PeerAddr netip.Addr
	// IGPMetric is the IGP distance to the route's NEXT_HOP, the
	// hot-potato tiebreaker.
	IGPMetric int
	// FromClient marks routes learned from a route-reflection client.
	FromClient bool
}

// LocalPref returns the effective local preference.
func (r *Route) LocalPref() uint32 {
	if r.Attrs.HasLocalPref {
		return r.Attrs.LocalPref
	}
	return DefaultLocalPref
}

// Clone returns a deep copy of the route.
func (r *Route) Clone() *Route {
	out := *r
	out.Attrs = r.Attrs.Clone()
	return &out
}

// Equal reports whether two routes are identical by value: same prefix,
// learning context and attributes. Selection uses it to distinguish a
// genuinely changed best path from an attribute-identical
// re-announcement, which must not trigger re-advertisement or FIB
// churn. Both nil is true; one nil is false.
func (r *Route) Equal(o *Route) bool {
	if r == nil || o == nil {
		return r == o
	}
	return r.Prefix == o.Prefix &&
		r.EBGP == o.EBGP &&
		r.PeerAS == o.PeerAS &&
		r.PeerID == o.PeerID &&
		r.PeerAddr == o.PeerAddr &&
		r.IGPMetric == o.IGPMetric &&
		r.FromClient == o.FromClient &&
		r.Attrs.Equal(o.Attrs)
}

func (r *Route) String() string {
	kind := "iBGP"
	if r.EBGP {
		kind = "eBGP"
	}
	return fmt.Sprintf("%v via AS%d (%s, lp=%d, igp=%d)", r.Prefix, r.PeerAS, kind, r.LocalPref(), r.IGPMetric)
}

// Compare implements the decision process: it returns a negative value
// if a is preferred over b, positive if b is preferred, and 0 only for
// routes indistinguishable at every step.
//
// Steps, in order (RFC 4271 §9.1.2.2 plus the RFC 4456 refinement):
//  1. highest LOCAL_PREF
//  2. shortest AS path
//  3. lowest ORIGIN
//  4. lowest MED, compared only between routes from the same
//     neighboring AS (missing MED treated as 0 per common default)
//  5. eBGP preferred over iBGP
//  6. lowest IGP metric to the NEXT_HOP (hot potato)
//  7. shortest CLUSTER_LIST (RFC 4456 §9)
//  8. lowest ORIGINATOR_ID / router ID
//  9. lowest peer address
func Compare(a, b *Route) int {
	if la, lb := a.LocalPref(), b.LocalPref(); la != lb {
		if la > lb {
			return -1
		}
		return 1
	}
	if pa, pb := a.Attrs.ASPathLen(), b.Attrs.ASPathLen(); pa != pb {
		if pa < pb {
			return -1
		}
		return 1
	}
	if oa, ob := a.Attrs.Origin, b.Attrs.Origin; oa != ob {
		if oa < ob {
			return -1
		}
		return 1
	}
	if a.PeerAS == b.PeerAS {
		ma, mb := a.med(), b.med()
		if ma != mb {
			if ma < mb {
				return -1
			}
			return 1
		}
	}
	if a.EBGP != b.EBGP {
		if a.EBGP {
			return -1
		}
		return 1
	}
	if a.IGPMetric != b.IGPMetric {
		if a.IGPMetric < b.IGPMetric {
			return -1
		}
		return 1
	}
	if ca, cb := len(a.Attrs.ClusterList), len(b.Attrs.ClusterList); ca != cb {
		if ca < cb {
			return -1
		}
		return 1
	}
	ia, ib := a.tieBreakID(), b.tieBreakID()
	if ia != ib {
		if ia.Less(ib) {
			return -1
		}
		return 1
	}
	if a.PeerAddr != b.PeerAddr {
		if a.PeerAddr.Less(b.PeerAddr) {
			return -1
		}
		return 1
	}
	return 0
}

func (r *Route) med() uint32 {
	if r.Attrs.HasMED {
		return r.Attrs.MED
	}
	return 0
}

// tieBreakID returns the ORIGINATOR_ID when present, otherwise the peer
// router ID (RFC 4456 §9).
func (r *Route) tieBreakID() netip.Addr {
	if r.Attrs.OriginatorID.IsValid() {
		return r.Attrs.OriginatorID
	}
	return r.PeerID
}

// Best returns the preferred route among candidates, or nil for an empty
// set. Ties (Compare == 0) resolve to the earliest candidate, which
// makes selection deterministic for equal routes.
func Best(routes []*Route) *Route {
	var best *Route
	for _, r := range routes {
		if r == nil {
			continue
		}
		if best == nil || Compare(r, best) < 0 {
			best = r
		}
	}
	return best
}

// Table is a router's Loc-RIB: all candidate routes per prefix plus the
// current best path. It is not safe for concurrent use.
type Table struct {
	entries map[netip.Prefix]*entry
	metrics *Metrics
}

type entry struct {
	routes []*Route // one per (PeerID, PeerAddr)
	best   *Route
}

// NewTable returns an empty Loc-RIB.
func NewTable() *Table {
	return &Table{entries: make(map[netip.Prefix]*entry)}
}

// Len returns the number of prefixes with at least one candidate.
func (t *Table) Len() int { return len(t.entries) }

// upsert installs or replaces the candidate from r's peer without
// rerunning selection; ApplyBatch defers reselection until a batch's
// mutations have all landed.
func (e *entry) upsert(r *Route) {
	for i, existing := range e.routes {
		if existing.PeerID == r.PeerID && existing.PeerAddr == r.PeerAddr {
			e.routes[i] = r
			return
		}
	}
	e.routes = append(e.routes, r)
}

// remove deletes the candidate learned from the given peer, reporting
// whether one existed. Like upsert it does not reselect.
func (e *entry) remove(peerID, peerAddr netip.Addr) bool {
	kept := e.routes[:0]
	removed := false
	for _, r := range e.routes {
		if r.PeerID == peerID && r.PeerAddr == peerAddr {
			removed = true
			continue
		}
		kept = append(kept, r)
	}
	e.routes = kept
	return removed
}

// Upsert installs or replaces the candidate from r's peer for r's
// prefix, reruns selection, and reports whether the best path changed.
func (t *Table) Upsert(r *Route) (bestChanged bool) {
	e := t.entries[r.Prefix]
	if e == nil {
		e = &entry{}
		t.entries[r.Prefix] = e
	}
	e.upsert(r)
	changed := e.reselect()
	if m := t.metrics; m != nil {
		m.Upserts.Inc()
		m.Reselects.Inc()
		if changed {
			m.BestChanges.Inc()
		}
		m.Prefixes.Set(float64(len(t.entries)))
	}
	return changed
}

// Withdraw removes the candidate learned from the given peer and reports
// whether the best path changed. Removing the last candidate deletes the
// prefix.
func (t *Table) Withdraw(prefix netip.Prefix, peerID, peerAddr netip.Addr) (bestChanged bool) {
	e := t.entries[prefix]
	if e == nil {
		return false
	}
	if !e.remove(peerID, peerAddr) {
		return false
	}
	var changed bool
	if len(e.routes) == 0 {
		changed = e.best != nil
		delete(t.entries, prefix)
	} else {
		changed = e.reselect()
		if m := t.metrics; m != nil {
			m.Reselects.Inc()
		}
	}
	if m := t.metrics; m != nil {
		m.Withdraws.Inc()
		if changed {
			m.BestChanges.Inc()
		}
		m.Prefixes.Set(float64(len(t.entries)))
	}
	return changed
}

// reselect reruns selection and reports whether the best path changed
// *by value*: replacing a peer's route with an attribute-identical
// announcement yields a new *Route pointer but must not report a
// change, or every periodic re-announcement would trigger spurious
// re-advertisement and FIB recompiles downstream.
func (e *entry) reselect() bool {
	nb := Best(e.routes)
	changed := !nb.Equal(e.best)
	e.best = nb
	return changed
}

// Lookup returns the best route of the longest prefix containing addr,
// or nil when no installed prefix covers it. This is the reference
// linear-scan LPM: correct for any caller, and the oracle the compiled
// forwarding plane (internal/fib) is differentially tested against. On
// large tables prefer a compiled fib.FIB for the hot path.
func (t *Table) Lookup(addr netip.Addr) *Route {
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	var best *Route
	bestBits := -1
	// Two distinct prefixes of equal length cannot both contain addr,
	// so the strict > comparison admits exactly one winner regardless
	// of iteration order.
	//vnslint:maprange max over unique Bits(); order cannot change the winner
	for p, e := range t.entries {
		if e.best == nil || !p.Contains(addr) {
			continue
		}
		if p.Bits() > bestBits {
			best, bestBits = e.best, p.Bits()
		}
	}
	return best
}

// Best returns the best route for prefix, or nil.
func (t *Table) Best(prefix netip.Prefix) *Route {
	if e := t.entries[prefix]; e != nil {
		return e.best
	}
	return nil
}

// Candidates returns all candidate routes for prefix.
func (t *Table) Candidates(prefix netip.Prefix) []*Route {
	if e := t.entries[prefix]; e != nil {
		out := make([]*Route, len(e.routes))
		copy(out, e.routes)
		return out
	}
	return nil
}

// BestExternal returns the best route among the prefix's eBGP-learned
// candidates, or nil. This is the route a border router advertises into
// iBGP under the best-external feature even when its overall best is an
// iBGP route, which is how the paper mitigates hidden routes behind the
// geo route reflector.
func (t *Table) BestExternal(prefix netip.Prefix) *Route {
	e := t.entries[prefix]
	if e == nil {
		return nil
	}
	var ext []*Route
	for _, r := range e.routes {
		if r.EBGP {
			ext = append(ext, r)
		}
	}
	return Best(ext)
}

// Prefixes returns all prefixes in deterministic (sorted) order.
func (t *Table) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(t.entries))
	for p := range t.entries {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// WalkBest visits the best route of every prefix in sorted order.
func (t *Table) WalkBest(fn func(*Route) bool) {
	for _, p := range t.Prefixes() {
		if b := t.Best(p); b != nil {
			if !fn(b) {
				return
			}
		}
	}
}
