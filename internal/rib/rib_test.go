package rib

import (
	"net/netip"
	"testing"
	"testing/quick"

	"vns/internal/bgp"
)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func baseRoute() *Route {
	return &Route{
		Prefix: prefix("203.0.113.0/24"),
		Attrs: bgp.Attrs{
			ASPath:  []bgp.ASPathSegment{{ASNs: []uint16{100, 200}}},
			NextHop: addr("192.0.2.1"),
		},
		EBGP:      true,
		PeerAS:    100,
		PeerID:    addr("10.0.0.1"),
		PeerAddr:  addr("192.0.2.1"),
		IGPMetric: 10,
	}
}

func TestCompareLocalPrefWins(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	a.Attrs.LocalPref, a.Attrs.HasLocalPref = 500, true
	b.Attrs.LocalPref, b.Attrs.HasLocalPref = 100, true
	// Make b otherwise strictly better so local pref must dominate.
	b.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: []uint16{100}}}
	b.IGPMetric = 0
	if Compare(a, b) >= 0 {
		t.Error("higher local pref should win over everything")
	}
}

func TestCompareDefaultLocalPref(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	a.Attrs.HasLocalPref = false
	b.Attrs.LocalPref, b.Attrs.HasLocalPref = 100, true
	b.PeerID = addr("10.0.0.2")
	// Both effectively lp=100: falls through to later steps; must not
	// treat missing as 0.
	if got := a.LocalPref(); got != DefaultLocalPref {
		t.Errorf("default local pref = %d", got)
	}
	if Compare(a, b) != -1 { // tie until router ID: 10.0.0.1 < 10.0.0.2
		t.Error("default lp should equal explicit 100 and fall to tiebreak")
	}
}

func TestCompareASPathLen(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	b.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: []uint16{100, 200, 300}}}
	if Compare(a, b) >= 0 {
		t.Error("shorter AS path should win")
	}
}

func TestCompareOrigin(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	a.Attrs.Origin = bgp.OriginIGP
	b.Attrs.Origin = bgp.OriginIncomplete
	if Compare(a, b) >= 0 {
		t.Error("lower origin should win")
	}
}

func TestCompareMEDSameNeighborOnly(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	a.Attrs.MED, a.Attrs.HasMED = 100, true
	b.Attrs.MED, b.Attrs.HasMED = 10, true
	// Same neighbor AS: lower MED wins.
	if Compare(b, a) >= 0 {
		t.Error("lower MED should win for same neighbor AS")
	}
	// Different neighbor AS: MED ignored, falls through to IGP metric.
	b.PeerAS = 300
	a.IGPMetric, b.IGPMetric = 1, 2
	if Compare(a, b) >= 0 {
		t.Error("MED must be ignored across different neighbor ASes")
	}
}

func TestCompareEBGPOverIBGP(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	b.EBGP = false
	b.IGPMetric = 0
	if Compare(a, b) >= 0 {
		t.Error("eBGP should beat iBGP before IGP metric")
	}
}

func TestCompareHotPotato(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	a.EBGP, b.EBGP = false, false
	a.IGPMetric, b.IGPMetric = 5, 50
	b.PeerID = addr("10.0.0.2")
	if Compare(a, b) >= 0 {
		t.Error("lower IGP metric (hot potato) should win")
	}
}

func TestCompareClusterListLen(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	a.EBGP, b.EBGP = false, false
	a.Attrs.ClusterList = []netip.Addr{addr("10.0.0.10")}
	b.Attrs.ClusterList = []netip.Addr{addr("10.0.0.10"), addr("10.0.0.11")}
	b.PeerID = addr("10.0.0.2")
	if Compare(a, b) >= 0 {
		t.Error("shorter cluster list should win")
	}
}

func TestCompareOriginatorID(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	a.Attrs.OriginatorID = addr("10.0.0.5")
	b.Attrs.OriginatorID = addr("10.0.0.9")
	if Compare(a, b) >= 0 {
		t.Error("lower originator ID should win")
	}
}

func TestComparePeerAddrFinalTiebreak(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	b.PeerAddr = addr("192.0.2.2")
	if Compare(a, b) >= 0 {
		t.Error("lower peer address should win")
	}
	b.PeerAddr = a.PeerAddr
	if Compare(a, b) != 0 {
		t.Error("identical routes should compare equal")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(lpA, lpB uint32, pathA, pathB uint8, igpA, igpB uint16, ebgpA, ebgpB bool) bool {
		mk := func(lp uint32, pathLen uint8, igp uint16, ebgp bool, id byte) *Route {
			asns := make([]uint16, pathLen%6+1)
			for i := range asns {
				asns[i] = uint16(i + 1)
			}
			return &Route{
				Prefix: prefix("10.0.0.0/8"),
				Attrs: bgp.Attrs{
					ASPath:       []bgp.ASPathSegment{{ASNs: asns}},
					LocalPref:    lp % 1000,
					HasLocalPref: true,
				},
				EBGP:      ebgp,
				PeerAS:    uint16(id),
				PeerID:    netip.AddrFrom4([4]byte{10, 0, 0, id}),
				PeerAddr:  netip.AddrFrom4([4]byte{192, 0, 2, id}),
				IGPMetric: int(igp),
			}
		}
		a := mk(lpA, pathA, igpA, ebgpA, 1)
		b := mk(lpB, pathB, igpB, ebgpB, 2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestEmpty(t *testing.T) {
	if Best(nil) != nil {
		t.Error("Best(nil) != nil")
	}
	if Best([]*Route{nil, nil}) != nil {
		t.Error("Best of nils != nil")
	}
}

func TestTableUpsertWithdraw(t *testing.T) {
	tb := NewTable()
	r1 := baseRoute()
	if !tb.Upsert(r1) {
		t.Error("first route should change best")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
	// Worse route from another peer: best unchanged.
	r2 := baseRoute()
	r2.PeerID = addr("10.0.0.2")
	r2.PeerAddr = addr("192.0.2.2")
	r2.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: []uint16{100, 200, 300}}}
	if tb.Upsert(r2) {
		t.Error("worse route should not change best")
	}
	if got := tb.Best(r1.Prefix); got != r1 {
		t.Errorf("best = %v", got)
	}
	if got := len(tb.Candidates(r1.Prefix)); got != 2 {
		t.Errorf("candidates = %d", got)
	}
	// Withdraw the best: r2 takes over.
	if !tb.Withdraw(r1.Prefix, r1.PeerID, r1.PeerAddr) {
		t.Error("withdrawing best should change best")
	}
	if got := tb.Best(r1.Prefix); got != r2 {
		t.Errorf("best after withdraw = %v", got)
	}
	// Withdraw a peer that has no route: no change.
	if tb.Withdraw(r1.Prefix, addr("10.9.9.9"), addr("10.9.9.9")) {
		t.Error("withdrawing unknown peer should not change best")
	}
	// Withdraw last: prefix disappears.
	if !tb.Withdraw(r1.Prefix, r2.PeerID, r2.PeerAddr) {
		t.Error("withdrawing last route should change best")
	}
	if tb.Len() != 0 || tb.Best(r1.Prefix) != nil {
		t.Error("prefix should be gone")
	}
}

func TestTableUpsertReplacesSamePeer(t *testing.T) {
	tb := NewTable()
	r1 := baseRoute()
	tb.Upsert(r1)
	r1b := baseRoute()
	r1b.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: []uint16{100}}}
	changed := tb.Upsert(r1b)
	if !changed {
		t.Error("implicit replacement should trigger reselection")
	}
	if got := len(tb.Candidates(r1.Prefix)); got != 1 {
		t.Errorf("candidates = %d, want 1 (implicit withdraw)", got)
	}
}

func TestBestExternal(t *testing.T) {
	tb := NewTable()
	// iBGP route with a huge local pref wins overall...
	ib := baseRoute()
	ib.EBGP = false
	ib.Attrs.LocalPref, ib.Attrs.HasLocalPref = 900, true
	ib.PeerID = addr("10.0.0.9")
	ib.PeerAddr = addr("10.0.0.9")
	tb.Upsert(ib)
	// ...but the best external is still advertised by best-external.
	eb := baseRoute()
	tb.Upsert(eb)
	eb2 := baseRoute()
	eb2.PeerID = addr("10.0.0.3")
	eb2.PeerAddr = addr("192.0.2.3")
	eb2.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: []uint16{100, 200, 300}}}
	tb.Upsert(eb2)

	if got := tb.Best(ib.Prefix); got != ib {
		t.Fatalf("overall best = %v, want iBGP route", got)
	}
	if got := tb.BestExternal(ib.Prefix); got != eb {
		t.Fatalf("best external = %v, want first eBGP route", got)
	}
	if got := tb.BestExternal(prefix("10.99.0.0/16")); got != nil {
		t.Errorf("best external of unknown prefix = %v", got)
	}
}

func TestPrefixesSorted(t *testing.T) {
	tb := NewTable()
	for _, p := range []string{"10.2.0.0/16", "10.1.0.0/16", "10.1.0.0/24", "9.0.0.0/8"} {
		r := baseRoute()
		r.Prefix = prefix(p)
		tb.Upsert(r)
	}
	ps := tb.Prefixes()
	want := []string{"9.0.0.0/8", "10.1.0.0/16", "10.1.0.0/24", "10.2.0.0/16"}
	for i, w := range want {
		if ps[i] != prefix(w) {
			t.Errorf("Prefixes[%d] = %v, want %v", i, ps[i], w)
		}
	}
	n := 0
	tb.WalkBest(func(*Route) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("WalkBest early stop: %d", n)
	}
}

func TestShouldReflect(t *testing.T) {
	a, b := addr("10.0.0.1"), addr("10.0.0.2")
	cases := []struct {
		fromClient, toClient bool
		from, to             netip.Addr
		want                 bool
	}{
		{true, true, a, b, true},    // client -> client
		{true, false, a, b, true},   // client -> non-client
		{false, true, a, b, true},   // non-client -> client
		{false, false, a, b, false}, // non-client -> non-client
		{true, true, a, a, false},   // never back to source
	}
	for i, c := range cases {
		if got := ShouldReflect(c.fromClient, c.toClient, c.from, c.to); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestReflectStampsAttributes(t *testing.T) {
	in := bgp.Attrs{ASPath: []bgp.ASPathSegment{{ASNs: []uint16{100}}}}
	orig, cluster := addr("10.0.0.7"), addr("10.0.0.100")
	out := Reflect(in, orig, cluster)
	if out.OriginatorID != orig {
		t.Errorf("originator = %v", out.OriginatorID)
	}
	if len(out.ClusterList) != 1 || out.ClusterList[0] != cluster {
		t.Errorf("cluster list = %v", out.ClusterList)
	}
	// Reflecting again preserves the originator and prepends.
	out2 := Reflect(out, addr("10.0.0.8"), addr("10.0.0.101"))
	if out2.OriginatorID != orig {
		t.Error("originator must not be overwritten")
	}
	if len(out2.ClusterList) != 2 || out2.ClusterList[0] != addr("10.0.0.101") {
		t.Errorf("cluster list after second reflect = %v", out2.ClusterList)
	}
	if len(in.ClusterList) != 0 {
		t.Error("Reflect mutated input")
	}
}

func TestExportToEBGP(t *testing.T) {
	in := bgp.Attrs{
		ASPath:       []bgp.ASPathSegment{{ASNs: []uint16{100}}},
		LocalPref:    500,
		HasLocalPref: true,
		MED:          5,
		HasMED:       true,
		OriginatorID: addr("10.0.0.1"),
		ClusterList:  []netip.Addr{addr("10.0.0.2")},
	}
	out, ok := ExportToEBGP(in, 65000, addr("192.0.2.9"))
	if !ok {
		t.Fatal("export should be allowed")
	}
	if out.FirstAS() != 65000 {
		t.Errorf("first AS = %d", out.FirstAS())
	}
	if out.HasLocalPref || out.HasMED || out.OriginatorID.IsValid() || out.ClusterList != nil {
		t.Errorf("iBGP attributes leaked: %+v", out)
	}
	if out.NextHop != addr("192.0.2.9") {
		t.Errorf("next hop = %v", out.NextHop)
	}
}

func TestExportToEBGPHonorsNoExport(t *testing.T) {
	in := bgp.Attrs{Communities: []bgp.Community{bgp.CommunityNoExport}}
	if _, ok := ExportToEBGP(in, 65000, addr("192.0.2.9")); ok {
		t.Error("no-export route must not be exported over eBGP")
	}
	in2 := bgp.Attrs{Communities: []bgp.Community{bgp.CommunityNoAdvertise}}
	if _, ok := ExportToEBGP(in2, 65000, addr("192.0.2.9")); ok {
		t.Error("no-advertise route must not be exported")
	}
}

func TestExportToIBGP(t *testing.T) {
	in := bgp.Attrs{
		ASPath:      []bgp.ASPathSegment{{ASNs: []uint16{100}}},
		Communities: []bgp.Community{bgp.CommunityNoExport},
	}
	out, ok := ExportToIBGP(in)
	if !ok {
		t.Fatal("no-export must still flow over iBGP")
	}
	if out.FirstAS() != 100 {
		t.Error("AS path must be preserved over iBGP")
	}
	in2 := bgp.Attrs{Communities: []bgp.Community{bgp.CommunityNoAdvertise}}
	if _, ok := ExportToIBGP(in2); ok {
		t.Error("no-advertise blocks iBGP export too")
	}
}

func TestRouteCloneAndString(t *testing.T) {
	r := baseRoute()
	c := r.Clone()
	c.Attrs.ASPath[0].ASNs[0] = 999
	if r.Attrs.ASPath[0].ASNs[0] == 999 {
		t.Error("Clone not deep")
	}
	if s := r.String(); s == "" {
		t.Error("empty String")
	}
}

func BenchmarkCompare(b *testing.B) {
	x, y := baseRoute(), baseRoute()
	y.PeerID = addr("10.0.0.2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(x, y)
	}
}

func BenchmarkTableUpsert(b *testing.B) {
	tb := NewTable()
	routes := make([]*Route, 1000)
	for i := range routes {
		r := baseRoute()
		r.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
		routes[i] = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Upsert(routes[i%len(routes)])
	}
}

func TestUpsertIdenticalReannouncementNoChange(t *testing.T) {
	tb := NewTable()
	if !tb.Upsert(baseRoute()) {
		t.Fatal("first announcement must change best")
	}
	// The same peer re-announces the same route with identical
	// attributes: a fresh *Route pointer, equal by value. This must NOT
	// report a best-path change (regression: pointer comparison made
	// every periodic re-announcement look like a change, churning
	// re-advertisement and FIB recompiles downstream).
	if tb.Upsert(baseRoute()) {
		t.Error("attribute-identical re-announcement reported bestChanged")
	}
	// A genuinely different attribute must still report a change.
	r := baseRoute()
	r.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: []uint16{100}}}
	if !tb.Upsert(r) {
		t.Error("shorter AS path should change best")
	}
	// And re-announcing the now-best route again is again a no-op.
	r2 := baseRoute()
	r2.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: []uint16{100}}}
	if tb.Upsert(r2) {
		t.Error("re-announcement of changed best reported bestChanged")
	}
}

func TestRouteEqual(t *testing.T) {
	a, b := baseRoute(), baseRoute()
	if !a.Equal(b) {
		t.Error("identical routes must be Equal")
	}
	var nilRoute *Route
	if !nilRoute.Equal(nil) {
		t.Error("nil.Equal(nil) must be true")
	}
	if a.Equal(nil) || nilRoute.Equal(a) {
		t.Error("nil vs non-nil must be unequal")
	}
	b.Attrs.Communities = []bgp.Community{42}
	if a.Equal(b) {
		t.Error("differing communities must be unequal")
	}
	b = baseRoute()
	b.IGPMetric++
	if a.Equal(b) {
		t.Error("differing IGP metric must be unequal")
	}
}

func TestTableLookupLongestPrefix(t *testing.T) {
	tb := NewTable()
	add := func(p string, peerID string) {
		r := baseRoute()
		r.Prefix = prefix(p)
		r.PeerID = addr(peerID)
		tb.Upsert(r)
	}
	add("0.0.0.0/0", "10.0.0.1")
	add("10.0.0.0/8", "10.0.0.2")
	add("10.1.0.0/16", "10.0.0.3")
	add("10.1.2.0/24", "10.0.0.4")

	cases := []struct {
		addr string
		want string // expected prefix
	}{
		{"10.1.2.3", "10.1.2.0/24"},  // most specific wins
		{"10.1.9.9", "10.1.0.0/16"},  // covered by /8 and /16
		{"10.200.0.1", "10.0.0.0/8"}, // only the /8 covers
		{"192.0.2.1", "0.0.0.0/0"},   // default route catches the rest
	}
	for _, c := range cases {
		got := tb.Lookup(addr(c.addr))
		if got == nil || got.Prefix != prefix(c.want) {
			t.Errorf("Lookup(%s) = %v, want %s", c.addr, got, c.want)
		}
	}

	// 4-in-6 mapped addresses unmap before matching.
	if got := tb.Lookup(addr("::ffff:10.1.2.3")); got == nil || got.Prefix != prefix("10.1.2.0/24") {
		t.Errorf("4-in-6 Lookup = %v, want 10.1.2.0/24", got)
	}

	// Without a default route, uncovered addresses miss.
	tb2 := NewTable()
	r := baseRoute()
	r.Prefix = prefix("172.16.0.0/12")
	tb2.Upsert(r)
	if got := tb2.Lookup(addr("8.8.8.8")); got != nil {
		t.Errorf("uncovered address returned %v, want nil", got)
	}
	if got := tb2.Lookup(addr("172.31.0.1")); got == nil {
		t.Error("covered address missed")
	}
}
