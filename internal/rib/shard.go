package rib

import (
	"net/netip"
	"runtime"
	"sync"
)

// ShardedTable partitions a Loc-RIB across per-prefix-range shards so
// batched ingestion runs the decision process on all cores. Sharding is
// by the top 16 bits of a prefix's (masked) IPv4 address, split into
// contiguous ranges: every prefix lives in exactly one shard, ops on
// distinct shards touch disjoint state, and — because the ranges are
// contiguous in address order — concatenating the shards' sorted
// changed-sets or prefix lists in shard order is globally sorted
// without a merge step.
//
// The correctness contract (pinned by TestShardedMatchesSequential and
// exercised under -race) is byte-for-byte equivalence with a single
// sequential Table fed the same batches: same best routes, same changed
// sets, same iteration order. Sharding is a scheduling change, never a
// semantic one.
//
// Methods are safe for the same single-writer discipline as Table:
// ApplyBatch itself fans out internally, but concurrent ApplyBatch
// calls (or reads concurrent with a batch) need external
// synchronization, matching how core.RRServer serializes ingestion.
type ShardedTable struct {
	shards  []*Table
	metrics *Metrics
}

// maxShards bounds fan-out; beyond this the per-batch goroutine spawn
// cost outweighs decision-process parallelism.
const maxShards = 64

// NewSharded returns a Loc-RIB split across n shards; n <= 0 selects
// GOMAXPROCS. One shard degenerates to a plain Table behind the same
// API.
func NewSharded(n int) *ShardedTable {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	s := &ShardedTable{shards: make([]*Table, n)}
	for i := range s.shards {
		s.shards[i] = NewTable()
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedTable) Shards() int { return len(s.shards) }

// shardOf maps a prefix to its shard: the top 16 bits of the masked
// address, scaled into the shard count. Contiguity of the resulting
// ranges is what keeps per-shard sorted output globally sorted. It runs
// once per op on the ingest path, so it must stay allocation-free.
//
//vnslint:hotpath
func (s *ShardedTable) shardOf(p netip.Prefix) int {
	a := p.Addr()
	if a.Is4In6() {
		a = a.Unmap()
	}
	if !a.Is4() {
		return 0
	}
	b := a.As4()
	top := uint32(b[0])<<8 | uint32(b[1])
	return int(top * uint32(len(s.shards)) >> 16)
}

// SetMetrics attaches metrics to every shard. The counters are atomic,
// so parallel shard workers increment them safely; the Prefixes gauge —
// which a single shard would clobber with its local count — is
// re-asserted with the global value after each batch joins.
func (s *ShardedTable) SetMetrics(m *Metrics) {
	s.metrics = m
	for _, t := range s.shards {
		t.SetMetrics(m)
	}
}

// ApplyBatch partitions the batch by shard, runs each shard's
// coalesce/mutate/reselect in its own goroutine (spawn-and-join: all
// workers are WaitGroup-joined before return), and returns the globally
// sorted prefixes whose best path changed by value — identical to what
// a sequential Table.ApplyBatch over the same ops would return.
func (s *ShardedTable) ApplyBatch(ops []Op) []netip.Prefix {
	if len(ops) == 0 {
		return nil
	}
	perShard := make([][]Op, len(s.shards))
	for _, op := range ops {
		i := s.shardOf(op.Prefix)
		perShard[i] = append(perShard[i], op)
	}
	changed := make([][]netip.Prefix, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if len(perShard[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			changed[i] = s.shards[i].ApplyBatch(perShard[i])
		}(i)
	}
	wg.Wait()
	total := 0
	for _, c := range changed {
		total += len(c)
	}
	out := make([]netip.Prefix, 0, total)
	for _, c := range changed {
		out = append(out, c...)
	}
	if m := s.metrics; m != nil {
		m.Prefixes.Set(float64(s.Len()))
	}
	return out
}

// Len returns the number of prefixes with at least one candidate.
func (s *ShardedTable) Len() int {
	n := 0
	for _, t := range s.shards {
		n += t.Len()
	}
	return n
}

// Best returns the best route for prefix, or nil.
func (s *ShardedTable) Best(prefix netip.Prefix) *Route {
	return s.shards[s.shardOf(prefix)].Best(prefix)
}

// Candidates returns all candidate routes for prefix.
func (s *ShardedTable) Candidates(prefix netip.Prefix) []*Route {
	return s.shards[s.shardOf(prefix)].Candidates(prefix)
}

// BestExternal returns the best eBGP-learned route for prefix, or nil.
func (s *ShardedTable) BestExternal(prefix netip.Prefix) *Route {
	return s.shards[s.shardOf(prefix)].BestExternal(prefix)
}

// Upsert installs one candidate immediately (the non-batched path),
// reporting whether the best path changed.
func (s *ShardedTable) Upsert(r *Route) bool {
	return s.shards[s.shardOf(r.Prefix)].Upsert(r)
}

// Withdraw removes one candidate immediately, reporting whether the
// best path changed.
func (s *ShardedTable) Withdraw(prefix netip.Prefix, peerID, peerAddr netip.Addr) bool {
	return s.shards[s.shardOf(prefix)].Withdraw(prefix, peerID, peerAddr)
}

// Lookup returns the best route of the longest installed prefix
// containing addr. Short (< /16) covering prefixes can live in a
// different shard than addr's own top-16 range, so the reference LPM
// consults every shard — it is an oracle, not a hot path (compiled
// lookups go through internal/fib).
func (s *ShardedTable) Lookup(addr netip.Addr) *Route {
	var best *Route
	bestBits := -1
	for _, t := range s.shards {
		if r := t.Lookup(addr); r != nil && r.Prefix.Bits() > bestBits {
			best, bestBits = r, r.Prefix.Bits()
		}
	}
	return best
}

// Prefixes returns all prefixes in globally sorted order: shard ranges
// are contiguous in address order, so per-shard sorted lists
// concatenate.
func (s *ShardedTable) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, s.Len())
	for _, t := range s.shards {
		out = append(out, t.Prefixes()...)
	}
	return out
}

// WalkBest visits the best route of every prefix in globally sorted
// order.
func (s *ShardedTable) WalkBest(fn func(*Route) bool) {
	for _, t := range s.shards {
		stopped := false
		t.WalkBest(func(r *Route) bool {
			if !fn(r) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}
