package scenario

import (
	"fmt"
	"net/netip"

	"vns/internal/adaptive"
)

// This file wires internal/adaptive into the scenario harness: the
// controller probes through the data-plane delay model (truth-based,
// with its trans-Pacific waypoints and regional hairpins), optionally
// distorted by scripted probe-bias events, and applies overrides to the
// same GeoRR the invariant suite inspects.

// setupAdaptive builds the spec's adaptive controller. Called after
// selector resolution (tracked prefixes may be "#N" selectors) and
// before the run starts.
func (e *engine) setupAdaptive() error {
	a := e.spec.Adaptive
	e.probeBias = make(map[adaptive.Key]float64)
	e.geoBestPoP = make(map[netip.Prefix]int)

	e.adaptive = adaptive.NewController(adaptive.Config{
		Sim:         e.sim,
		IntervalSec: a.IntervalSec,
		Budget:      a.Budget,
		HalfLifeSec: a.HalfLifeSec,
		Stability: adaptive.StabilityConfig{
			ApplyMarginMs:      a.ApplyMarginMs,
			ReleaseMarginMs:    a.ReleaseMarginMs,
			JitterFactor:       a.JitterFactor,
			MinSamples:         a.MinSamples,
			MaxStalenessSec:    a.StalenessSec,
			PenaltyPerFlap:     a.PenaltyPerFlap,
			PenaltyHalfLifeSec: a.PenaltyHalfLifeSec,
			SuppressThreshold:  a.SuppressThreshold,
			ReuseThreshold:     a.ReuseThreshold,
		},
		Probe:       e.probeRTT,
		Sink:        e.env.RR,
		Telemetry:   e.env.Telemetry,
		Convergence: e.fwd.Convergence(),
	})

	track := func(pfx netip.Prefix) error {
		tr, ok := e.env.AdaptiveTrack(pfx)
		if !ok {
			return nil
		}
		e.geoBestPoP[pfx] = tr.GeoBest
		return e.adaptive.Track(tr.Prefix, tr.Cands)
	}
	if len(a.Prefixes) > 0 {
		for _, sel := range a.Prefixes {
			pfx, err := e.resolveSelector(sel)
			if err != nil {
				return err
			}
			if err := track(pfx); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range e.env.Topo.Prefixes {
		if err := track(e.env.Topo.Prefixes[i].Prefix); err != nil {
			return err
		}
	}
	return nil
}

// probeRTT is the controller's measurement backend: the delay model's
// truth-based external RTT from the egress PoP, plus any scripted bias.
// Everything runs on the sim goroutine, so the bias map needs no lock.
func (e *engine) probeRTT(pop int, pfx netip.Prefix) (float64, bool) {
	pi, ok := e.env.Topo.PrefixInfoFor(pfx)
	if !ok {
		return 0, false
	}
	rtt, ok := e.env.DP.ExternalRTT(e.env.Net.PoPByID(pop), pi)
	if !ok {
		return 0, false
	}
	rtt += e.probeBias[adaptive.Key{PoP: pop, Prefix: pfx}]
	if rtt < 0.1 {
		rtt = 0.1
	}
	return rtt, true
}

// biasKey resolves a probe-bias/probe-oscillate event to its path key.
// PoP "geo" means the prefix's geographically predicted egress.
func (e *engine) biasKey(ev *Event) (adaptive.Key, error) {
	pfx, ok := e.selectors[ev.Prefix]
	if !ok {
		return adaptive.Key{}, fmt.Errorf("unresolved prefix selector %q", ev.Prefix)
	}
	var pop int
	if ev.PoP == "geo" {
		pop, ok = e.geoBestPoP[pfx]
		if !ok {
			return adaptive.Key{}, fmt.Errorf("prefix %v is not adaptively tracked", pfx)
		}
	} else {
		pop = e.env.Net.PoP(ev.PoP).ID
	}
	return adaptive.Key{PoP: pop, Prefix: pfx}, nil
}

// applyProbeBias handles the probe-bias op: ExtraMs 0 clears.
func (e *engine) applyProbeBias(ev *Event) error {
	k, err := e.biasKey(ev)
	if err != nil {
		return err
	}
	if ev.ExtraMs == 0 {
		delete(e.probeBias, k)
	} else {
		e.probeBias[k] = ev.ExtraMs
	}
	return nil
}

// applyProbeOscillate schedules the bias on for the first half of each
// period and off for the second, Cycles times, ending clear.
func (e *engine) applyProbeOscillate(ev *Event) error {
	k, err := e.biasKey(ev)
	if err != nil {
		return err
	}
	now := e.sim.Now()
	for i := 0; i < ev.Cycles; i++ {
		at := now + float64(i)*ev.PeriodSec
		e.sim.Schedule(at, func() { e.probeBias[k] = ev.ExtraMs })
		e.sim.Schedule(at+ev.PeriodSec/2, func() { delete(e.probeBias, k) })
	}
	return nil
}

// adaptiveGain measures, per overridden prefix, the modeled external
// RTT at the geographic choice vs. the adaptive choice. The means go in
// the final checkpoint's trace: the subsystem's whole point is that the
// adaptive column is lower.
func (e *engine) adaptiveGain() (n int, geoMs, adMs float64) {
	st := e.adaptive.Status(e.sim.Now())
	for _, o := range st.Overrides {
		g, okG := e.probeRTT(e.geoBestPoP[o.Prefix], o.Prefix)
		a, okA := e.probeRTT(o.PoP, o.Prefix)
		if !okG || !okA {
			continue
		}
		n++
		geoMs += g
		adMs += a
	}
	if n > 0 {
		geoMs /= float64(n)
		adMs /= float64(n)
	}
	return n, geoMs, adMs
}
