package scenario

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"vns/internal/adaptive"
	"vns/internal/experiments"
	"vns/internal/fib"
	"vns/internal/flowsim"
	"vns/internal/health"
	"vns/internal/media"
	"vns/internal/netsim"
	"vns/internal/telemetry"
	"vns/internal/vns"
)

// defaultNumAS keeps a full invariant sweep per checkpoint cheap while
// still yielding hundreds of prefixes and >100 eBGP sessions.
const defaultNumAS = 250

// warmupCheckpointSec is when the init checkpoint (cp 0) runs: enough
// simulated time for the first hellos to circulate. Control events must
// fire at t >= 1 (Validate enforces it).
const warmupCheckpointSec = 0.5

// Result is one completed scenario run.
type Result struct {
	Spec *Spec
	// Trace is the canonical event trace; golden tests diff it
	// byte-for-byte.
	Trace string
	// Prefixes and Sessions describe the assembled world.
	Prefixes, Sessions int
}

// Run assembles the spec's environment, drives its timeline, and checks
// every invariant at every checkpoint. The returned error names the
// first violated invariant with its checkpoint context; the Result is
// returned alongside it with the trace up to the failure.
func Run(spec *Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	e, err := newEngine(spec)
	if err != nil {
		return nil, err
	}
	return e.run()
}

// flow is one scripted media stream with explicit conservation
// accounting: every packet is scheduled, then delivered, dropped by a
// fabric link, or refused for lack of a route.
type flow struct {
	name      string
	endAt     float64
	scheduled int
	delivered int
	dropped   int
	noroute   int
}

// faultRec remembers the last scripted transition of an L2 link, for
// the convergence-bound invariant.
type faultRec struct {
	down bool
	at   float64
}

type engine struct {
	spec     *Spec
	env      *experiments.Env
	fwd      *vns.Forwarding
	sim      *netsim.Sim
	reg      *health.Registry
	tracer   *telemetry.Tracer
	mon      *health.Monitor
	inj      *health.Injector
	vantages []*vns.PoP

	// faults keys by normalized [2]int PoP ids.
	faults map[[2]int]faultRec
	// manualDown tracks egress routers drained via the egress-down op,
	// which the liveness invariant must not expect to follow link state.
	manualDown map[netip.Addr]bool
	// statics is the stack announce-burst pushes and withdraw-burst
	// pops (prefix, egress router).
	statics [][2]string
	// usedCovers guards against splitting the same covering prefix
	// twice across bursts.
	usedCovers map[netip.Prefix]bool
	burstCur   int

	// selectors caches resolved prefix selectors.
	selectors map[string]netip.Prefix

	// Adaptive-routing state (spec.Adaptive != nil): the controller, the
	// scripted probe biases, and each tracked prefix's geographically
	// predicted egress PoP (the "geo" bias target and the gain
	// baseline). All mutated on the sim goroutine only.
	adaptive   *adaptive.Controller
	probeBias  map[adaptive.Key]float64
	geoBestPoP map[netip.Prefix]int

	// Aggregate-flow state (spec.Flows != nil): the flowsim engine rides
	// the same virtual clock and shared fabric links; aggSeq numbers the
	// groups agg-flows events create.
	flowEng *flowsim.Engine
	aggSeq  int

	flows []*flow
	// prevLink holds the last checkpoint's per-link counters for the
	// monotonicity half of the conservation invariant, keyed by link
	// name in fabric order.
	prevLink map[string]netsim.LinkStats

	trace strings.Builder
}

func newEngine(spec *Spec) (*engine, error) {
	cfg := experiments.Config{Seed: spec.Seed, NumAS: spec.NumAS}
	if cfg.NumAS == 0 {
		cfg.NumAS = defaultNumAS
	}
	env := experiments.NewEnv(cfg)
	sim := &netsim.Sim{}
	// Telemetry rides the sim clock: metric state is a pure function of
	// the spec, and trace spans carry virtual timestamps, so checkpoints
	// can pin both in the golden trace.
	tracer := telemetry.NewTracer(sim.Now, telemetry.DefaultTraceCap)
	fwd := env.Forwarding(vns.ForwardingConfig{Tracer: tracer}) // sync recompiles
	reg := health.NewRegistryOn(env.Telemetry)
	mon := health.NewMonitor(sim, fwd.Fabric(), health.Config{}, reg)
	ctl := health.NewController(fwd, env.RR, reg)
	ctl.Bind(mon)

	e := &engine{
		spec:       spec,
		env:        env,
		fwd:        fwd,
		sim:        sim,
		reg:        reg,
		tracer:     tracer,
		mon:        mon,
		inj:        health.NewInjector(sim, fwd.Fabric(), reg),
		faults:     make(map[[2]int]faultRec),
		manualDown: make(map[netip.Addr]bool),
		usedCovers: make(map[netip.Prefix]bool),
		selectors:  make(map[string]netip.Prefix),
		prevLink:   make(map[string]netsim.LinkStats),
	}

	codes := spec.Vantages
	if len(codes) == 0 {
		codes = []string{"LON", "SJS", "SIN"}
	}
	for _, c := range codes {
		e.vantages = append(e.vantages, env.Net.PoP(c))
	}

	// Resolve every prefix selector against the initial steady state, so
	// a scenario studies a pinned destination even as routing moves under
	// it (the failover study's pattern).
	for i := range spec.Events {
		ev := &spec.Events[i]
		if ev.Prefix == "" {
			continue
		}
		if _, err := e.resolveSelector(ev.Prefix); err != nil {
			return nil, fmt.Errorf("scenario %s: event %d: %w", spec.Name, i, err)
		}
	}
	if spec.Adaptive != nil {
		if err := e.setupAdaptive(); err != nil {
			return nil, fmt.Errorf("scenario %s: adaptive: %w", spec.Name, err)
		}
	}
	if spec.Flows != nil {
		e.setupFlows()
	}
	return e, nil
}

// resolveSelector resolves "#N" or "egress=CODE" to a concrete prefix,
// pinning one with force-exit when no prefix geo-routes to the
// requested egress naturally.
func (e *engine) resolveSelector(sel string) (netip.Prefix, error) {
	if p, ok := e.selectors[sel]; ok {
		return p, nil
	}
	topoPfx := e.env.Topo.Prefixes
	var out netip.Prefix
	switch {
	case strings.HasPrefix(sel, "#"):
		var n int
		if _, err := fmt.Sscanf(sel, "#%d", &n); err != nil || n < 0 || n >= len(topoPfx) {
			return netip.Prefix{}, fmt.Errorf("bad prefix selector %q (have %d prefixes)", sel, len(topoPfx))
		}
		out = topoPfx[n].Prefix
	case strings.HasPrefix(sel, "egress="):
		pop := e.env.Net.PoP(strings.TrimPrefix(sel, "egress="))
		eng := e.fwd.EngineByID(e.vantages[0].ID)
		for i := range topoPfx {
			if nh, ok := eng.Lookup(topoPfx[i].Prefix.Addr()); ok && nh.PoP == pop.ID {
				out = topoPfx[i].Prefix
				break
			}
		}
		if !out.IsValid() {
			// Nothing geo-routes there at this scale: pin a prefix with the
			// management interface. A forced exit only binds when the forced
			// router carries a candidate session for the prefix's origin, so
			// pick the router from the candidate set at the requested PoP.
			for i := range topoPfx {
				var router netip.Addr
				for _, c := range e.env.Peering.Candidates(topoPfx[i].Origin) {
					if c.Session.PoP == pop {
						router = c.Session.Router
						break
					}
				}
				if !router.IsValid() {
					continue
				}
				if err := e.env.RR.ForceExit(topoPfx[i].Prefix, router); err != nil {
					return netip.Prefix{}, err
				}
				e.fwd.Flush()
				out = topoPfx[i].Prefix
				break
			}
		}
		if !out.IsValid() {
			return netip.Prefix{}, fmt.Errorf("selector %q: no routable prefix to pin", sel)
		}
	default:
		return netip.Prefix{}, fmt.Errorf("bad prefix selector %q", sel)
	}
	e.selectors[sel] = out
	return out, nil
}

func (e *engine) run() (*Result, error) {
	res := &Result{
		Spec:     e.spec,
		Prefixes: len(e.env.Topo.Prefixes),
		Sessions: len(e.env.Peering.Sessions()),
	}
	seed := e.spec.Seed
	if seed == 0 {
		seed = e.env.Cfg.Seed
	}
	fmt.Fprintf(&e.trace, "# scenario %s seed=%d numAS=%d\n", e.spec.Name, seed, e.env.Cfg.NumAS)
	fmt.Fprintf(&e.trace, "# prefixes=%d sessions=%d vantages=%s\n",
		res.Prefixes, res.Sessions, joinPoPs(e.vantages))

	e.mon.Start()
	if e.adaptive != nil {
		e.adaptive.Start()
	}
	if e.flowEng != nil {
		e.flowEng.Start()
	}
	e.sim.Run(warmupCheckpointSec)
	if err := e.checkpoint(0, "init", warmupCheckpointSec, false); err != nil {
		res.Trace = e.trace.String()
		return res, err
	}

	cp := 0
	for i := range e.spec.Events {
		ev := &e.spec.Events[i]
		e.sim.Run(ev.At)
		if err := e.apply(ev); err != nil {
			res.Trace = e.trace.String()
			return res, fmt.Errorf("scenario %s: event %d (%s): %w", e.spec.Name, i, ev.Op, err)
		}
		if ev.Op == OpMediaFlow {
			// Flows are traffic, not control events: they run across
			// later checkpoints and are settled by the final one.
			fmt.Fprintf(&e.trace, "t=%.3f flow %s ingress=%s dst=%s dur=%.1fs\n",
				ev.At, ev.Prefix, ev.PoP, e.selectors[ev.Prefix], ev.DurSec)
			continue
		}
		if ev.Op == OpAggFlows {
			// Same deal for aggregate flows; applyAggFlows wrote the
			// trace line (it knows the selected path set).
			continue
		}
		cp++
		cpAt := ev.checkpointAt()
		e.sim.Run(cpAt)
		e.fwd.Flush()
		if err := e.checkpoint(cp, describe(ev), cpAt, false); err != nil {
			res.Trace = e.trace.String()
			return res, err
		}
	}

	endAt := e.spec.end()
	if endAt < e.sim.Now() {
		endAt = e.sim.Now()
	}
	e.sim.Run(endAt)
	e.mon.Stop()
	if e.adaptive != nil {
		// Stop before the final drain: the probe loop reschedules itself
		// until stopped, and conservation requires an empty event queue.
		e.adaptive.Stop()
	}
	if e.flowEng != nil {
		// Same: halt the epoch queues (flushing the last partial epoch)
		// so RunAll can drain to zero pending events.
		e.flowEng.Stop()
	}
	e.sim.RunAll()
	e.fwd.Flush()
	err := e.checkpoint(cp+1, "final", endAt, true)
	res.Trace = e.trace.String()
	return res, err
}

// describe renders an event for trace and error context.
func describe(ev *Event) string {
	parts := []string{ev.Op}
	for _, p := range []string{ev.Link, ev.PoP, ev.Router, ev.Prefix} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	if ev.Count > 0 {
		parts = append(parts, fmt.Sprintf("n=%d", ev.Count))
	}
	return strings.Join(parts, " ")
}

func (e *engine) linkPoPs(link string) (*vns.PoP, *vns.PoP, error) {
	codes := strings.Split(link, "-")
	a, b := e.env.Net.PoP(codes[0]), e.env.Net.PoP(codes[1])
	if e.fwd.Fabric().Link(a, b) == nil {
		return nil, nil, fmt.Errorf("no L2 link %s", link)
	}
	return a, b, nil
}

func (e *engine) routerOf(sel string) (netip.Addr, error) {
	var code string
	var n int
	if _, err := fmt.Sscanf(sel, "%3s:%d", &code, &n); err != nil || n < 1 {
		if _, err := fmt.Sscanf(sel, "%2s:%d", &code, &n); err != nil || n < 1 {
			return netip.Addr{}, fmt.Errorf("bad router selector %q (want CODE:N)", sel)
		}
	}
	p := e.env.Net.PoP(code)
	if n > len(p.Routers) {
		return netip.Addr{}, fmt.Errorf("router selector %q: PoP has %d routers", sel, len(p.Routers))
	}
	return p.Routers[n-1], nil
}

func (e *engine) recordFault(a, b *vns.PoP, down bool, at float64) {
	i, j := a.ID, b.ID
	if i > j {
		i, j = j, i
	}
	e.faults[[2]int{i, j}] = faultRec{down: down, at: at}
}

// convKindFor maps a scripted op to its convergence event kind, "" for
// ops that do not mutate routing (fault injections converge through the
// failover controller, which opens its own "failover" events).
func convKindFor(op string) string {
	switch op {
	case OpAnnounceBurst, OpWithdrawBurst:
		return telemetry.ConvChurn
	case OpEgressDown, OpEgressUp:
		return telemetry.ConvDrain
	case OpForceExit, OpUnforce, OpExempt, OpUnexempt:
		return telemetry.ConvMgmt
	}
	return ""
}

func (e *engine) apply(ev *Event) error {
	// Routing-mutating ops become convergence events: the reflector
	// mutations notify the forwarding plane inside the op, so one
	// compile-exclusive forwarding stage plus the attributed fib_compile
	// observations decompose it. On the virtual clock every duration is
	// zero — the event and stage counts are what the goldens pin.
	if kind := convKindFor(ev.Op); kind != "" {
		ce := e.fwd.Convergence().Begin(kind)
		mark := ce.Mark()
		defer func() {
			ce.StageExclusive(telemetry.StageForwarding, mark)
			ce.Finish()
		}()
	}
	now := e.sim.Now()
	switch ev.Op {
	case OpLinkDown, OpLinkUp:
		a, b, err := e.linkPoPs(ev.Link)
		if err != nil {
			return err
		}
		down := ev.Op == OpLinkDown
		if down {
			e.inj.LinkDownAt(now, a, b)
		} else {
			e.inj.LinkUpAt(now, a, b)
		}
		e.recordFault(a, b, down, now)
	case OpFlapLink:
		a, b, err := e.linkPoPs(ev.Link)
		if err != nil {
			return err
		}
		e.inj.FlapLink(a, b, now, ev.PeriodSec, ev.Cycles)
		// The last cycle leaves the link up, half a period after its
		// final down.
		lastUp := now + float64(ev.Cycles-1)*ev.PeriodSec + ev.PeriodSec/2
		e.recordFault(a, b, false, lastUp)
	case OpDelaySpike:
		a, b, err := e.linkPoPs(ev.Link)
		if err != nil {
			return err
		}
		e.inj.DelaySpikeAt(now, a, b, ev.ExtraMs, ev.DurSec)
	case OpPoPFail, OpPoPRecover:
		p := e.env.Net.PoP(ev.PoP)
		down := ev.Op == OpPoPFail
		if down {
			e.inj.FailPoPAt(now, p)
		} else {
			e.inj.RecoverPoPAt(now, p)
		}
		for _, l := range e.env.Net.L2Links() {
			if l[0] == p || l[1] == p {
				e.recordFault(l[0], l[1], down, now)
			}
		}
	case OpEgressDown, OpEgressUp:
		r, err := e.routerOf(ev.Router)
		if err != nil {
			return err
		}
		down := ev.Op == OpEgressDown
		e.env.RR.SetEgressDown(r, down)
		if down {
			e.manualDown[r] = true
		} else {
			delete(e.manualDown, r)
		}
		// Management drains republish explicitly (liveness withdrawals go
		// through the controller, which does this itself).
		e.fwd.InvalidateAll()
		e.fwd.Flush()
	case OpForceExit:
		r, err := e.routerOf(ev.Router)
		if err != nil {
			return err
		}
		pfx := e.selectors[ev.Prefix]
		return e.env.RR.ForceExit(pfx, r)
	case OpUnforce:
		e.env.RR.Unforce(e.selectors[ev.Prefix])
	case OpExempt:
		e.env.RR.Exempt(e.selectors[ev.Prefix])
	case OpUnexempt:
		e.env.RR.Unexempt(e.selectors[ev.Prefix])
	case OpAnnounceBurst:
		return e.announceBurst(ev)
	case OpWithdrawBurst:
		n := ev.Count
		if n > len(e.statics) {
			n = len(e.statics)
		}
		for i := 0; i < n; i++ {
			top := e.statics[len(e.statics)-1]
			e.statics = e.statics[:len(e.statics)-1]
			e.env.RR.RemoveStatic(netip.MustParsePrefix(top[0]), netip.MustParseAddr(top[1]))
		}
	case OpMediaFlow:
		return e.startFlow(ev)
	case OpAggFlows:
		return e.applyAggFlows(ev)
	case OpProbeBias:
		return e.applyProbeBias(ev)
	case OpProbeOscillate:
		return e.applyProbeOscillate(ev)
	case OpCheckpoint:
		// Nothing to do: the run loop checkpoints after the settle.
	default:
		return fmt.Errorf("unknown op %q", ev.Op)
	}
	return nil
}

// announceBurst installs Count static more-specifics at the named PoP:
// each is the upper half of a distinct originated covering prefix, so
// the covering prefixes' own representative addresses (their network
// addresses, in the lower half) keep resolving unchanged.
func (e *engine) announceBurst(ev *Event) error {
	pop := e.env.Net.PoP(ev.PoP)
	topoPfx := e.env.Topo.Prefixes
	installed := 0
	for installed < ev.Count && e.burstCur < len(topoPfx) {
		cover := topoPfx[e.burstCur].Prefix
		e.burstCur++
		if cover.Bits() > 24 || e.usedCovers[cover] {
			continue
		}
		e.usedCovers[cover] = true
		sub := upperHalf(cover)
		router := pop.Routers[installed%len(pop.Routers)]
		if err := e.env.RR.AddStatic(sub, router, nil); err != nil {
			return err
		}
		e.statics = append(e.statics, [2]string{sub.String(), router.String()})
		installed++
	}
	if installed < ev.Count {
		return fmt.Errorf("announce-burst: only %d/%d covering prefixes available", installed, ev.Count)
	}
	return nil
}

// upperHalf returns the upper-half more-specific of an IPv4 prefix:
// one bit longer, network address with the new bit set.
func upperHalf(p netip.Prefix) netip.Prefix {
	a := p.Addr().As4()
	bit := uint(31 - p.Bits())
	v := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	v |= 1 << bit
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}), p.Bits()+1)
}

func (e *engine) startFlow(ev *Event) error {
	ingress := e.env.Net.PoP(ev.PoP)
	dst := e.selectors[ev.Prefix].Addr()
	seed := e.env.Cfg.Seed ^ uint64(len(e.flows)+1)
	tr := media.GenerateTrace(media.TraceConfig{DurationSec: ev.DurSec, Seed: seed})
	fl := &flow{
		name:  fmt.Sprintf("%s->%s", ev.PoP, ev.Prefix),
		endAt: e.sim.Now() + ev.DurSec,
	}
	e.flows = append(e.flows, fl)
	eng := e.fwd.EngineByID(ingress.ID)
	start := e.sim.Now()
	for i := range tr.Packets {
		p := tr.Packets[i]
		seq := uint32(i)
		e.sim.Schedule(start+p.AtSec, func() {
			fl.scheduled++
			_, ok := eng.Forward(e.sim, dst, netsim.Packet{Seq: seq, Size: p.Size},
				func(netsim.Packet, fib.NextHop) { fl.delivered++ },
				func(int) { fl.dropped++ })
			if !ok {
				fl.noroute++
			}
		})
	}
	return nil
}

func joinPoPs(pops []*vns.PoP) string {
	codes := make([]string, len(pops))
	for i, p := range pops {
		codes[i] = p.Code
	}
	return strings.Join(codes, ",")
}

// sortedDownEgresses renders the withdrawn egress set deterministically.
func (e *engine) sortedDownEgresses() []string {
	var out []string
	for _, id := range e.env.RR.DownEgresses() {
		out = append(out, id.String())
	}
	sort.Strings(out)
	return out
}
