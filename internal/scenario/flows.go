package scenario

import (
	"fmt"
	"strings"

	"vns/internal/flowsim"
	"vns/internal/netsim"
	"vns/internal/relay"
	"vns/internal/vns"
)

// This file wires internal/flowsim into the scenario harness: agg-flows
// events launch aggregate flow populations over the same shared L2
// fabric links the invariant suite audits, with overlay paths picked
// from the topology by relay.SelectPaths and the offload controller
// comparing them against the event's direct-Internet alternative.

// setupFlows builds the spec's aggregate flow engine on the scenario's
// virtual clock. The engine registers its flowsim_* families on the
// scenario telemetry registry, so checkpoints pin its metric state in
// the golden trace alongside everything else.
func (e *engine) setupFlows() {
	f := e.spec.Flows
	e.flowEng = flowsim.New(flowsim.Config{
		Sim:      e.sim,
		Shards:   f.Shards,
		EpochSec: f.EpochSec,
		Offload: flowsim.OffloadConfig{
			Enabled:        f.Offload,
			HalfLifeSec:    f.HalfLifeSec,
			OffloadBelowMs: f.OffloadBelowMs,
			ReclaimAboveMs: f.ReclaimAboveMs,
			DwellSec:       f.DwellSec,
			MinSamples:     f.MinSamples,
		},
		Telemetry: e.env.Telemetry,
	})
}

// overlayCandidates enumerates the ingress→egress overlay paths the
// fabric offers: the direct adjacency plus every two-hop detour through
// an intermediate PoP, each priced at its links' propagation sum plus
// the spec's fixed tail. Two hops is as deep as conferencing relays go
// in practice (and as deep as the reorder bound tolerates); longer
// walks only show up as ever-later candidates SelectPaths would reject.
func (e *engine) overlayCandidates(a, b *vns.PoP) (cands []relay.PathCandidate, links [][]*netsim.Link) {
	fabric := e.fwd.Fabric()
	add := func(name string, ls ...*netsim.Link) {
		total := e.spec.Flows.TailMs
		for _, l := range ls {
			total += l.PropDelayMs
		}
		cands = append(cands, relay.PathCandidate{Name: name, DelayMs: total})
		links = append(links, ls)
	}
	if l := fabric.Link(a, b); l != nil {
		add(a.Code+"-"+b.Code, l)
	}
	for _, m := range e.env.Net.PoPs {
		if m == a || m == b {
			continue
		}
		l1, l2 := fabric.Link(a, m), fabric.Link(m, b)
		if l1 != nil && l2 != nil {
			add(a.Code+"-"+m.Code+"-"+b.Code, l1, l2)
		}
	}
	return cands, links
}

// applyAggFlows handles the agg-flows op: build the group's overlay
// path set from the fabric, register the population, and write the
// trace line naming the paths the scheduler selected.
func (e *engine) applyAggFlows(ev *Event) error {
	f := e.spec.Flows
	codes := strings.Split(ev.Link, "-")
	a, b := e.env.Net.PoP(codes[0]), e.env.Net.PoP(codes[1])
	cands, links := e.overlayCandidates(a, b)

	k := f.MaxPaths
	if k <= 0 {
		k = 2
	}
	if k > flowsim.MaxPaths {
		k = flowsim.MaxPaths
	}
	skew := f.MaxSkewMs
	if skew <= 0 {
		skew = 30
	}
	choices := relay.SelectPaths(cands, k, skew)
	if len(choices) == 0 && ev.DirectMs <= 0 {
		return fmt.Errorf("agg-flows %s: no overlay path and no direct alternative", ev.Link)
	}

	paths := make([]flowsim.PathSpec, 0, len(choices))
	names := make([]string, 0, len(choices))
	for _, c := range choices {
		paths = append(paths, flowsim.PathSpec{
			Name:   cands[c.Index].Name,
			Links:  links[c.Index],
			TailMs: f.TailMs,
			Weight: c.Weight,
		})
		names = append(names, cands[c.Index].Name)
	}
	dup := f.DupFraction
	if len(paths) < 2 {
		dup = 0
	}

	name := fmt.Sprintf("%s/%d", ev.Link, e.aggSeq)
	e.aggSeq++
	gid, err := e.flowEng.AddGroup(flowsim.GroupConfig{
		Name:         name,
		Paths:        paths,
		DirectMs:     ev.DirectMs,
		MaxReorderMs: f.MaxReorderMs,
		DupFraction:  dup,
	})
	if err != nil {
		return err
	}
	if err := e.flowEng.AddFlows(gid, ev.Count, ev.RatePps, ev.DurSec); err != nil {
		return err
	}
	fmt.Fprintf(&e.trace, "t=%.3f agg-flows %s n=%d rate=%.0fpps dur=%.1fs direct=%.0fms paths=%s\n",
		ev.At, name, ev.Count, ev.RatePps, ev.DurSec, ev.DirectMs,
		orDash(strings.Join(names, ",")))
	return nil
}
