package scenario

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"vns/internal/core"
	"vns/internal/fib"
	"vns/internal/geo"
	"vns/internal/health"
	"vns/internal/vns"
)

// convergeBoundSec bounds how long the stack may take to converge after
// a scripted transition: liveness detection (150 ms of silence plus a
// 50 ms tick), the up-hold hysteresis (1 s), long-haul hello propagation
// (~100 ms one way), and the synchronous FIB republish. Checkpoints run
// at least defaultSettleSec after the last scripted action, so a system
// meeting this bound is quiescent when the invariant suite fires; a
// system missing it fails the convergence invariant, not just a flaky
// assertion somewhere downstream.
const convergeBoundSec = 2.0

// checkpoint quiesces nothing itself — the run loop has already driven
// the simulator past the settle window — and runs the five-invariant
// suite from every vantage, appending one canonical block to the trace.
// Non-final checkpoints sweep the spec's vantages; the final checkpoint
// sweeps every PoP.
func (e *engine) checkpoint(cp int, label string, at float64, final bool) error {
	vants := e.vantages
	if final {
		vants = e.env.Net.PoPs
	}
	fmt.Fprintf(&e.trace, "t=%.3f cp=%d %s\n", at, cp, label)

	wrap := func(inv string, err error) error {
		fmt.Fprintf(&e.trace, "  FAIL %s: %v\n", inv, err)
		return fmt.Errorf("scenario %s: checkpoint %d (%s) t=%.3f: invariant %s: %w",
			e.spec.Name, cp, label, at, inv, err)
	}

	uni := e.universe()

	// Invariant 1 — congruence: the FIB's egress for every geo-routed
	// prefix matches an independent great-circle oracle.
	var parts []string
	for _, v := range vants {
		okN, skip, err := e.checkCongruence(v)
		if err != nil {
			return wrap("congruence", err)
		}
		parts = append(parts, fmt.Sprintf("%s=%d/skip%d", v.Code, okN, skip))
	}
	fmt.Fprintf(&e.trace, "  congruence %s\n", strings.Join(parts, " "))

	// Invariant 2 — three-way agreement: compiled FIB lookup, reference
	// control-plane resolution (with LPM cover fallback), and the netsim
	// fabric's view of the path must all agree.
	parts = parts[:0]
	for _, v := range vants {
		n, err := e.checkThreeWay(v, uni)
		if err != nil {
			return wrap("threeway", err)
		}
		parts = append(parts, fmt.Sprintf("%s=%d", v.Code, n))
	}
	fmt.Fprintf(&e.trace, "  threeway %s\n", strings.Join(parts, " "))

	// Invariant 3 — no forwarding loop: an IP-style hop-by-hop walk,
	// re-consulting each transit PoP's own FIB, terminates at a PoP that
	// exits locally without revisiting anyone.
	parts = parts[:0]
	for _, v := range vants {
		n, err := e.checkNoLoop(v, uni)
		if err != nil {
			return wrap("noloop", err)
		}
		parts = append(parts, fmt.Sprintf("%s=%d", v.Code, n))
	}
	fmt.Fprintf(&e.trace, "  noloop %s\n", strings.Join(parts, " "))

	// Invariant 4 — convergence bound: every scripted transition older
	// than the bound is reflected in liveness state, the IGP view, and
	// the withdrawn-egress set.
	settled, err := e.checkConvergence(at)
	if err != nil {
		return wrap("convergence", err)
	}
	fmt.Fprintf(&e.trace, "  convergence settled=%d\n", settled)

	// Invariant 5 — conservation: per-link counters are monotone, every
	// drop is attributed to exactly one cause, and (at the final
	// checkpoint) every scheduled flow packet is accounted for.
	agg, err := e.checkConservation(final)
	if err != nil {
		return wrap("conservation", err)
	}

	// Canonical state block: FIB generations, failed state, traffic.
	parts = parts[:0]
	for _, v := range vants {
		s := e.fwd.EngineByID(v.ID).Publisher().Stats()
		parts = append(parts, fmt.Sprintf("%s gen=%d size=%d", v.Code, s.Generation, s.Prefixes))
	}
	fmt.Fprintf(&e.trace, "  fib %s\n", strings.Join(parts, " "))
	fmt.Fprintf(&e.trace, "  igp-down %s\n", e.igpDownLinks())
	fmt.Fprintf(&e.trace, "  egress-down %s\n", orDash(strings.Join(e.sortedDownEgresses(), ",")))
	if e.adaptive != nil {
		st := e.adaptive.Status(at)
		fmt.Fprintf(&e.trace, "  adaptive overrides=%d suppressed=%d samples=%d\n",
			len(st.Overrides), len(st.Suppressed), st.Samples)
		for _, o := range st.Overrides {
			fmt.Fprintf(&e.trace, "  override %v %s>%s adv=%.1fms\n",
				o.Prefix, o.GeoCode, o.Code, o.AdvantageMs)
		}
		for _, s := range st.Suppressed {
			fmt.Fprintf(&e.trace, "  damped %v penalty=%.0f flips=%d\n",
				s.Prefix, s.Penalty, s.Flips)
		}
		if final {
			n, geoMs, adMs := e.adaptiveGain()
			fmt.Fprintf(&e.trace, "  adaptive-gain prefixes=%d geo=%.1fms adaptive=%.1fms\n",
				n, geoMs, adMs)
		}
	}
	fmt.Fprintf(&e.trace, "  fabric tx=%d drops=%d loss=%d queue=%d admin=%d\n",
		agg.tx, agg.drops, agg.loss, agg.queue, agg.admin)
	if final {
		for _, fl := range e.flows {
			fmt.Fprintf(&e.trace, "  flow %s sched=%d delivered=%d dropped=%d noroute=%d\n",
				fl.name, fl.scheduled, fl.delivered, fl.dropped, fl.noroute)
		}
	}
	if e.flowEng != nil {
		ft := e.flowEng.Totals()
		fmt.Fprintf(&e.trace, "  agg-flows flows=%d offloaded=%d sched=%d delivered=%d direct=%d loss=%d queue=%d admin=%d late=%d\n",
			ft.Flows, ft.OffloadedFlows, ft.Scheduled, ft.Delivered, ft.DirectDelivered,
			ft.DropsLoss, ft.DropsQueue, ft.DropsAdmin, ft.DropsLate)
		if final {
			fmt.Fprintf(&e.trace, "  agg-reorder wait=%.3fms pkts=%d dup sent=%d repaired=%d discarded=%d transitions=%d\n",
				ft.MeanReorderWaitMs(), ft.ReorderDelivered,
				ft.DupSent, ft.Repaired, ft.DupDiscarded, ft.OffloadTransitions)
			for _, g := range e.flowEng.Groups() {
				mode := "overlay"
				if g.Offloaded {
					mode = "direct"
				}
				fmt.Fprintf(&e.trace, "  agg-group %s flows=%d paths=%d mode=%s overlay=%.1fms direct=%.1fms delivered=%d/%d transitions=%d\n",
					g.Name, g.Flows, g.Paths, mode, g.OverlayMs, g.DirectMs,
					g.Delivered, g.Scheduled, g.Transitions)
			}
		}
	}

	// Telemetry pin: every checkpoint carries a digest of the
	// deterministic exposition snapshot (volatile wall-clock families
	// excluded), so any drift in the observability surface — a renamed
	// family, a miscounted packet — diverges the golden. The final
	// checkpoint additionally records a cross-layer route trace from the
	// first vantage and the full snapshot.
	snap := e.env.Telemetry.Snapshot()
	fmt.Fprintf(&e.trace, "  telemetry series=%d digest=%016x spans=%d\n",
		strings.Count(snap, "\n"), fnv64a(snap), e.tracer.Len())
	if final {
		id := e.fwd.TraceRoute(e.vantages[0], e.env.Topo.Prefixes[0].Prefix.Addr())
		for _, s := range e.tracer.Spans() {
			if s.Trace == id {
				fmt.Fprintf(&e.trace, "  trace %s\n", s.JSON())
			}
		}
		fmt.Fprintf(&e.trace, "  snapshot begin\n")
		for _, line := range strings.Split(strings.TrimRight(snap, "\n"), "\n") {
			fmt.Fprintf(&e.trace, "    %s\n", line)
		}
		fmt.Fprintf(&e.trace, "  snapshot end\n")
	}
	return nil
}

// fnv64a is the 64-bit FNV-1a of s, inlined so the digest's definition
// is pinned here rather than borrowed from hash/fnv's Sum ordering.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// universe is every prefix the forwarding plane should know: originated
// prefixes in allocation order, then static more-specifics in the
// reflector's sorted order.
func (e *engine) universe() []netip.Prefix {
	statics := e.env.RR.Statics()
	out := make([]netip.Prefix, 0, len(e.env.Topo.Prefixes)+len(statics))
	for i := range e.env.Topo.Prefixes {
		out = append(out, e.env.Topo.Prefixes[i].Prefix)
	}
	for _, s := range statics {
		out = append(out, s.Prefix)
	}
	return out
}

// usableFrom mirrors the forwarding plane's health filter: the egress
// router is not withdrawn and its PoP is IGP-reachable from the vantage.
func (e *engine) usableFrom(v *vns.PoP, router netip.Addr) bool {
	p, ok := e.env.Net.RouterPoP(router)
	return ok && !e.env.RR.EgressDown(router) && e.env.Net.Reachable(v, p)
}

// checkCongruence verifies the paper's core claim against an oracle the
// production code never consults: for every geo-routed prefix, the
// egress PoP the compiled FIB selects must be great-circle closest to
// the prefix's (database) location among healthy candidates, up to the
// local-pref curve's quantization. Exempt prefixes, geolocation misses
// (both fall back to hot-potato by design), and forced prefixes whose
// pinned egress is out of service are skipped; a forced prefix with a
// healthy pin must use exactly that router.
func (e *engine) checkCongruence(v *vns.PoP) (okN, skipped int, err error) {
	eng := e.fwd.EngineByID(v.ID)
	for i := range e.env.Topo.Prefixes {
		pi := &e.env.Topo.Prefixes[i]
		pfx := pi.Prefix
		if e.env.RR.IsExempt(pfx) {
			skipped++
			continue
		}
		nh, routed := eng.Lookup(pfx.Addr())
		if fr, forced := e.env.RR.ForcedExit(pfx); forced {
			if !e.usableFrom(v, fr) {
				skipped++
				continue
			}
			if !routed || nh.Router != fr {
				return okN, skipped, fmt.Errorf("%s: %v is forced to %v but FIB says %v", v.Code, pfx, fr, nh)
			}
			okN++
			continue
		}
		if or, overridden := e.env.RR.OverrideFor(pfx); overridden {
			// Sanctioned divergence: the adaptive controller measured
			// this prefix faster away from its great-circle egress, so
			// the oracle's claim is suspended — the FIB must instead
			// follow the override exactly (while its router is usable;
			// when it is not, routing degrades to geography mid-
			// transition and the oracle can't know which, so skip).
			if !e.usableFrom(v, or) {
				skipped++
				continue
			}
			if !routed || nh.Router != or {
				return okN, skipped, fmt.Errorf("%s: %v is adaptively overridden to %v but FIB says %v", v.Code, pfx, or, nh)
			}
			okN++
			continue
		}
		rec, located := e.env.DB.LookupPrefix(pfx)
		if !located {
			skipped++
			continue
		}
		bestLP, healthy := uint32(0), 0
		for _, c := range e.env.Peering.Candidates(pi.Origin) {
			if !e.usableFrom(v, c.Session.Router) {
				continue
			}
			healthy++
			if lp := core.LinearLocalPref(geo.DistanceKm(c.Session.PoP.Place.Pos, rec.Pos)); lp > bestLP {
				bestLP = lp
			}
		}
		if healthy == 0 {
			if routed {
				return okN, skipped, fmt.Errorf("%s: %v has no healthy egress but FIB routes to %v", v.Code, pfx, nh)
			}
			okN++
			continue
		}
		if !routed {
			return okN, skipped, fmt.Errorf("%s: %v has %d healthy egresses but no FIB route", v.Code, pfx, healthy)
		}
		gotLP := core.LinearLocalPref(geo.DistanceKm(e.env.Net.PoPByID(nh.PoP).Place.Pos, rec.Pos))
		if gotLP != bestLP {
			return okN, skipped, fmt.Errorf("%s: %v exits pop%d (local-pref %d) but the oracle's closest healthy egress scores %d",
				v.Code, pfx, nh.PoP, gotLP, bestLP)
		}
		okN++
	}
	return okN, skipped, nil
}

// resolveLPM is the reference answer for a prefix's representative
// address: the control-plane resolution of the prefix itself or, when
// it resolves to nothing (a static whose pinned egress is out of
// service), of the longest universe prefix covering the address —
// exactly how longest-prefix match falls back to the covering route.
func (e *engine) resolveLPM(v *vns.PoP, pfx netip.Prefix, uni []netip.Prefix) (fib.NextHop, bool) {
	if nh, ok := e.fwd.Resolve(v, pfx); ok {
		return nh, true
	}
	addr := pfx.Addr()
	var covers []netip.Prefix
	for _, q := range uni {
		if q != pfx && q.Bits() < pfx.Bits() && q.Contains(addr) {
			covers = append(covers, q)
		}
	}
	sort.Slice(covers, func(i, j int) bool { return covers[i].Bits() > covers[j].Bits() })
	for _, q := range covers {
		if nh, ok := e.fwd.Resolve(v, q); ok {
			return nh, true
		}
	}
	return fib.NextHop{}, false
}

// checkThreeWay differentially tests each universe prefix three ways:
// the compiled trie lookup, the reference control-plane decision, and
// the netsim fabric (the IGP path to the chosen egress must exist, end
// there, and cross no admin-down data-plane link).
func (e *engine) checkThreeWay(v *vns.PoP, uni []netip.Prefix) (checked int, err error) {
	eng := e.fwd.EngineByID(v.ID)
	fabric := e.fwd.Fabric()
	for _, pfx := range uni {
		want, wantOK := e.resolveLPM(v, pfx, uni)
		got, gotOK := eng.Lookup(pfx.Addr())
		if wantOK != gotOK {
			return checked, fmt.Errorf("%s: %v FIB routed=%v, control plane routed=%v", v.Code, pfx, gotOK, wantOK)
		}
		if gotOK {
			if got.PoP != want.PoP || got.Router != want.Router {
				return checked, fmt.Errorf("%s: %v FIB says %v, control plane says %v", v.Code, pfx, got, want)
			}
			egress := e.env.Net.PoPByID(got.PoP)
			hops := e.env.Net.InternalPath(v, egress)
			if hops == nil || hops[len(hops)-1] != egress {
				return checked, fmt.Errorf("%s: %v routed to %s but the IGP has no internal path there", v.Code, pfx, egress.Code)
			}
			for i := 1; i < len(hops); i++ {
				l := fabric.Link(hops[i-1], hops[i])
				if l == nil {
					return checked, fmt.Errorf("%s: %v path uses nonexistent fabric link %s-%s",
						v.Code, pfx, hops[i-1].Code, hops[i].Code)
				}
				if l.AdminDown() {
					return checked, fmt.Errorf("%s: %v forwarded over admin-down link %s", v.Code, pfx, l.Name)
				}
			}
		}
		checked++
	}
	return checked, nil
}

// checkNoLoop walks each routed destination hop by hop, re-consulting
// every transit PoP's own FIB the way hop-by-hop IP forwarding would,
// and requires the walk to reach a PoP that exits locally without
// visiting any PoP twice and without blackholing mid-path.
func (e *engine) checkNoLoop(v *vns.PoP, uni []netip.Prefix) (walked int, err error) {
	for _, pfx := range uni {
		addr := pfx.Addr()
		if _, ok := e.fwd.EngineByID(v.ID).Lookup(addr); !ok {
			continue
		}
		cur := v
		visited := map[int]bool{v.ID: true}
		for hop := 0; ; hop++ {
			if hop > len(e.env.Net.PoPs) {
				return walked, fmt.Errorf("%s: %v walk did not terminate within %d hops", v.Code, pfx, hop)
			}
			nh, ok := e.fwd.EngineByID(cur.ID).Lookup(addr)
			if !ok {
				return walked, fmt.Errorf("%s: %v blackholes at transit PoP %s", v.Code, pfx, cur.Code)
			}
			if nh.PoP == cur.ID {
				break // cur is the egress: the packet leaves the network here
			}
			hops := e.env.Net.InternalPath(cur, e.env.Net.PoPByID(nh.PoP))
			if hops == nil || len(hops) < 2 {
				return walked, fmt.Errorf("%s: %v at %s selects unreachable egress pop%d", v.Code, pfx, cur.Code, nh.PoP)
			}
			next := hops[1]
			if visited[next.ID] {
				return walked, fmt.Errorf("%s: %v forwarding loop through %s (hop %d)", v.Code, pfx, next.Code, hop)
			}
			visited[next.ID] = true
			cur = next
		}
		walked++
	}
	return walked, nil
}

// checkConvergence verifies that every scripted link transition older
// than the convergence bound has propagated through all three layers —
// liveness session state, the IGP view, and (once nothing is in
// flight) the withdrawn-egress set — and that the detector fired within
// the bound. Links with no scripted fault must be up everywhere: a
// delay spike that falsely trips detection fails here.
func (e *engine) checkConvergence(at float64) (settled int, err error) {
	keys := make([][2]int, 0, len(e.faults))
	for k := range e.faults {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	inFlight := false
	for _, k := range keys {
		rec := e.faults[k]
		a, b := e.env.Net.PoPByID(k[0]), e.env.Net.PoPByID(k[1])
		if at-rec.at < convergeBoundSec {
			inFlight = true
			continue
		}
		sess := e.mon.Session(a, b)
		if sess == nil {
			return settled, fmt.Errorf("no liveness session for %s-%s", a.Code, b.Code)
		}
		want := health.StateUp
		if rec.down {
			want = health.StateDown
		}
		if sess.State() != want {
			return settled, fmt.Errorf("%s-%s liveness is %v %.2fs after its scripted transition (want %v)",
				a.Code, b.Code, sess.State(), at-rec.at, want)
		}
		if e.env.Net.L2LinkDown(a, b) != rec.down {
			return settled, fmt.Errorf("%s-%s IGP view disagrees with scripted state (want down=%v)", a.Code, b.Code, rec.down)
		}
		if lc := sess.LastChange(); lc > rec.at+convergeBoundSec {
			return settled, fmt.Errorf("%s-%s converged %.2fs after the transition, bound %.1fs",
				a.Code, b.Code, lc-rec.at, convergeBoundSec)
		}
		settled++
	}
	for _, s := range e.mon.Sessions() {
		a, b := s.Ends()
		k := [2]int{a.ID, b.ID}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if _, scripted := e.faults[k]; scripted {
			continue
		}
		if s.State() != health.StateUp {
			return settled, fmt.Errorf("unscripted failure: %s-%s liveness is down", a.Code, b.Code)
		}
		if e.env.Net.L2LinkDown(a, b) {
			return settled, fmt.Errorf("unscripted failure: %s-%s is down in the IGP", a.Code, b.Code)
		}
	}
	if !inFlight {
		if err := e.checkWithdrawals(); err != nil {
			return settled, err
		}
	}
	return settled, nil
}

// checkWithdrawals requires the reflector's withdrawn-egress set to be
// exactly the routers of IGP-isolated PoPs plus management drains — no
// missing withdrawal, no leftover one.
func (e *engine) checkWithdrawals() error {
	want := make(map[netip.Addr]bool)
	//vnslint:maprange set-to-set copy; destination is a map, order cannot escape
	for r := range e.manualDown {
		want[r] = true
	}
	for _, p := range e.env.Net.PoPs {
		adjacencies, downs := 0, 0
		for _, l := range e.env.Net.L2Links() {
			if l[0] != p && l[1] != p {
				continue
			}
			adjacencies++
			if e.env.Net.L2LinkDown(l[0], l[1]) {
				downs++
			}
		}
		if adjacencies > 0 && downs == adjacencies {
			for _, r := range p.Routers {
				want[r] = true
			}
		}
	}
	got := make(map[netip.Addr]bool)
	for _, r := range e.env.RR.DownEgresses() {
		got[r] = true
	}
	if len(want) != len(got) {
		return fmt.Errorf("withdrawn egresses %v, want %v", addrSet(got), addrSet(want))
	}
	// Set containment; the error message renders both sides sorted, so
	// iteration order cannot escape.
	//vnslint:maprange
	for r := range want {
		if !got[r] {
			return fmt.Errorf("withdrawn egresses %v, want %v", addrSet(got), addrSet(want))
		}
	}
	return nil
}

func addrSet(m map[netip.Addr]bool) []string {
	out := make([]string, 0, len(m))
	for a := range m {
		out = append(out, a.String())
	}
	sort.Strings(out)
	return out
}

// linkAgg sums per-link counters for the trace's fabric line.
type linkAgg struct {
	tx, drops, loss, queue, admin uint64
}

// checkConservation asserts per-link counter sanity — monotone against
// the previous checkpoint, and every drop attributed to exactly one
// cause — and, at the final checkpoint, that every scheduled flow
// packet was delivered, dropped on a named link, or refused for lack of
// a route, with the event queue fully drained.
func (e *engine) checkConservation(final bool) (agg linkAgg, err error) {
	for _, l := range e.fwd.Fabric().Links() {
		st := l.Stats()
		prev := e.prevLink[l.Name]
		if st.TxPackets < prev.TxPackets || st.TxBytes < prev.TxBytes || st.Drops < prev.Drops ||
			st.DropsLoss < prev.DropsLoss || st.DropsQueue < prev.DropsQueue || st.DropsAdmin < prev.DropsAdmin {
			return agg, fmt.Errorf("link %s counters went backwards: %+v then %+v", l.Name, prev, st)
		}
		if st.Drops != st.DropsLoss+st.DropsQueue+st.DropsAdmin {
			return agg, fmt.Errorf("link %s drop partition broken: %+v", l.Name, st)
		}
		e.prevLink[l.Name] = st
		agg.tx += st.TxPackets
		agg.drops += st.Drops
		agg.loss += st.DropsLoss
		agg.queue += st.DropsQueue
		agg.admin += st.DropsAdmin
	}
	if final {
		for _, fl := range e.flows {
			if fl.scheduled == 0 {
				return agg, fmt.Errorf("flow %s scheduled no packets", fl.name)
			}
			if fl.scheduled != fl.delivered+fl.dropped+fl.noroute {
				return agg, fmt.Errorf("flow %s: %d scheduled but %d delivered + %d dropped + %d norouted",
					fl.name, fl.scheduled, fl.delivered, fl.dropped, fl.noroute)
			}
		}
		if e.flowEng != nil {
			// Aggregate flows hold the same bar per flow: every emitted
			// packet delivered or attributed to exactly one drop cause,
			// with engine totals matching the per-flow sums.
			if err := e.flowEng.CheckConservation(); err != nil {
				return agg, err
			}
			if e.flowEng.FlowCount() > 0 && e.flowEng.Totals().Scheduled == 0 {
				return agg, fmt.Errorf("aggregate flows scheduled no packets")
			}
		}
		if n := e.sim.Pending(); n != 0 {
			return agg, fmt.Errorf("%d events still pending after the final drain", n)
		}
	}
	return agg, nil
}

// igpDownLinks renders the control plane's failed-link set in L2
// specification order, "-" when empty.
func (e *engine) igpDownLinks() string {
	var out []string
	for _, l := range e.env.Net.L2Links() {
		if e.env.Net.L2LinkDown(l[0], l[1]) {
			out = append(out, l[0].Code+"-"+l[1].Code)
		}
	}
	return orDash(strings.Join(out, ","))
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
