package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var (
	update = flag.Bool("update", false, "regenerate golden traces")
	seeds  = flag.Int("seeds", 3, "seeds per spec in the sweep test")
)

// TestScenarioGolden runs every embedded spec and diffs its canonical
// trace byte-for-byte against the checked-in golden. Regenerate with
//
//	go test ./internal/scenario -run Golden -update
func TestScenarioGolden(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := Load(name)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != name {
				t.Fatalf("spec file %s.json names itself %q", name, spec.Name)
			}
			res, err := Run(spec)
			if err != nil {
				t.Fatalf("invariant violation:\n%s\n%v", res.Trace, err)
			}
			golden := filepath.Join("testdata", "golden", name+".trace")
			if *update {
				if err := os.WriteFile(golden, []byte(res.Trace), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("no golden trace (run with -update to create): %v", err)
			}
			if string(want) != res.Trace {
				t.Errorf("trace diverged from golden %s\n--- got ---\n%s--- want ---\n%s", golden, res.Trace, want)
			}
		})
	}
}

// TestScenarioDeterminism runs the busiest spec twice in one process and
// requires byte-identical traces: the whole stack — topology generation,
// liveness timing, FIB recompiles, media flows — must be a pure function
// of the spec.
func TestScenarioDeterminism(t *testing.T) {
	spec, err := Load("churn-failover")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Trace != b.Trace {
		t.Errorf("two runs of the same spec diverged\n--- first ---\n%s--- second ---\n%s", a.Trace, b.Trace)
	}
}

// TestScenarioSeedSweep re-runs the two event-heaviest specs under
// -seeds fresh seeds each. A failure arrives pre-shrunk to its minimal
// event prefix with a copy-pasteable repro command.
func TestScenarioSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is not for -short")
	}
	for _, name := range []string{"churn", "churn-400k", "churn-failover", "adaptive-geo-wrong", "adaptive-flap-damp", "flows-multipath-offload"} {
		spec, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		sw := make([]uint64, *seeds)
		for i := range sw {
			sw[i] = uint64(7 + i) // small fixed seeds, distinct from the default
		}
		for _, f := range Sweep(spec, sw) {
			t.Errorf("spec %s seed %d fails with %d/%d events: %v\nrepro: %s",
				name, f.Seed, f.MinEvents, len(spec.Events), f.Err, f.Repro)
		}
	}
}

// TestSpecValidation exercises the cheap static checks sweeps rely on.
func TestSpecValidation(t *testing.T) {
	bad := []string{
		`{"events":[]}`, // no name
		`{"name":"x","events":[{"at":0.1,"op":"link-down","link":"A-B"}]}`,               // inside warmup
		`{"name":"x","events":[{"at":1,"op":"link-down","link":"LONASH"}]}`,              // malformed link
		`{"name":"x","events":[{"at":1,"op":"flap-link","link":"A-B","cycles":3}]}`,      // no period
		`{"name":"x","events":[{"at":1,"op":"announce-burst","pop":"SIN"}]}`,             // no count
		`{"name":"x","events":[{"at":1,"op":"media-flow","pop":"LON","prefix":"#0"}]}`,   // no duration
		`{"name":"x","events":[{"at":1,"op":"warp-core-breach"}]}`,                       // unknown op
		`{"name":"x","events":[{"at":1,"op":"link-down","link":"A-B","bogus":true}]}`,    // unknown field
		`{"name":"x","events":[{"at":1,"op":"link-down","link":"A-B"},{"at":2,"op":"link-up","link":"A-B"}]}`, // inside settle
		`{"name":"x","events":[{"at":1,"op":"probe-bias","pop":"geo","prefix":"#0","extraMs":50}]}`,           // adaptive op, no adaptive block
		`{"name":"x","adaptive":{"applyMarginMs":-1},"events":[]}`,                                            // negative margin
		`{"name":"x","adaptive":{"prefixes":["10.0.0.0/8"]},"events":[]}`,                                     // literal prefix, not "#N"
		`{"name":"x","adaptive":{},"events":[{"at":1,"op":"probe-oscillate","pop":"geo","prefix":"#0","extraMs":50,"cycles":3}]}`, // no period
		`{"name":"x","adaptive":{},"events":[{"at":1,"op":"probe-oscillate","pop":"geo","prefix":"#0","periodSec":2,"cycles":3}]}`, // no extraMs
		`{"name":"x","adaptive":{},"events":[{"at":1,"op":"probe-bias","prefix":"#0","extraMs":50}]}`,         // no pop
		`{"name":"x","adaptive":{},"events":[{"at":1,"op":"checkpoint","pop":"LON"}]}`,                        // checkpoint takes no operands
		`{"name":"x","events":[{"at":1,"op":"checkpoint"}]}`,                                                 // checkpoint with neither adaptive nor flows
		`{"name":"x","events":[{"at":1,"op":"agg-flows","link":"LON-AMS","count":10,"ratePps":50,"durSec":5}]}`,    // agg-flows, no flows block
		`{"name":"x","flows":{},"events":[{"at":1,"op":"agg-flows","link":"LONAMS","count":10,"ratePps":50,"durSec":5}]}`, // malformed link
		`{"name":"x","flows":{},"events":[{"at":1,"op":"agg-flows","link":"LON-AMS","ratePps":50,"durSec":5}]}`,    // no count
		`{"name":"x","flows":{},"events":[{"at":1,"op":"agg-flows","link":"LON-AMS","count":10,"durSec":5}]}`,      // no rate
		`{"name":"x","flows":{"dupFraction":1.5},"events":[]}`,                                               // dupFraction outside [0,1]
		`{"name":"x","flows":{"maxSkewMs":-1},"events":[]}`,                                                  // negative skew gate
	}
	for i, in := range bad {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("case %d: bad spec accepted: %s", i, in)
		}
	}
	ok := `{"name":"x","events":[
		{"at":1,"op":"link-down","link":"LON-ASH"},
		{"at":3.5,"op":"media-flow","pop":"LON","prefix":"#0","durSec":2},
		{"at":3.5,"op":"link-up","link":"LON-ASH"}]}`
	if _, err := ParseSpec([]byte(ok)); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	okAdaptive := `{"name":"x","adaptive":{"intervalSec":0.5,"budget":4,"prefixes":["#0","#3"]},"events":[
		{"at":1,"op":"probe-bias","pop":"geo","prefix":"#0","extraMs":50},
		{"at":3.5,"op":"probe-oscillate","pop":"SIN","prefix":"#3","extraMs":-30,"periodSec":2,"cycles":2},
		{"at":10,"op":"checkpoint"},
		{"at":13,"op":"probe-bias","pop":"geo","prefix":"#0","extraMs":0}]}`
	if _, err := ParseSpec([]byte(okAdaptive)); err != nil {
		t.Errorf("good adaptive spec rejected: %v", err)
	}
	okFlows := `{"name":"x","flows":{"maxPaths":2,"maxSkewMs":5,"offload":true,"dwellSec":2},"events":[
		{"at":1,"op":"agg-flows","link":"LON-AMS","count":50,"ratePps":25,"durSec":10,"directMs":60},
		{"at":1,"op":"checkpoint"}]}`
	if _, err := ParseSpec([]byte(okFlows)); err != nil {
		t.Errorf("good flows spec rejected: %v", err)
	}
}
