// Package scenario is the deterministic end-to-end conformance harness:
// it assembles a full VNS instance (topology, GeoIP, peering, L2 fabric,
// liveness monitoring, per-PoP FIB engines) from a compact declarative
// spec, drives a scripted event timeline on the virtual clock, quiesces
// after every event, and runs an invariant suite across control and data
// plane. Each run emits a canonical trace — simulated timestamps only,
// stable ordering — that golden tests diff byte-for-byte.
package scenario

import (
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"vns/internal/detsort"
)

//go:embed specs/*.json
var specFS embed.FS

// Spec is one declarative scenario: the world to assemble plus the event
// timeline to drive through it. Specs are checked in as JSON under
// specs/ and embedded in the package.
type Spec struct {
	// Name identifies the scenario; the golden trace lives at
	// testdata/golden/<Name>.trace.
	Name string `json:"name"`
	// Seed drives every stochastic component (0 uses the environment's
	// default). Seed sweeps override it.
	Seed uint64 `json:"seed"`
	// NumAS sizes the synthetic Internet; 0 means 250, which keeps a
	// full invariant sweep per checkpoint under a second.
	NumAS int `json:"numAS"`
	// Vantages are the PoP codes whose FIBs the per-checkpoint
	// invariants examine (every-PoP sweeps are reserved for the final
	// checkpoint). Empty means LON, SJS, SIN — one per continent.
	Vantages []string `json:"vantages"`
	// Events is the scripted timeline, sorted by At.
	Events []Event `json:"events"`
	// EndSec extends the run past the last checkpoint (flows need the
	// room to finish); 0 derives it from the timeline.
	EndSec float64 `json:"endSec"`
	// Adaptive, when present, runs the measured-delay adaptive routing
	// controller (internal/adaptive) over the scenario: probe rounds on
	// the virtual clock feed per-path estimators, and overrides install
	// on the GeoRR when measurement contradicts geography. The
	// congruence invariant treats those overrides as sanctioned
	// divergence, and checkpoints report the override set.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
	// Flows, when present, runs the aggregate flow engine
	// (internal/flowsim) over the scenario's shared fabric: agg-flows
	// events launch flow populations whose overlay paths are selected
	// from the L2 topology, optionally split multipath and offloaded to
	// their direct-Internet alternative. The conservation invariant then
	// also accounts for every aggregate packet, and checkpoints report
	// the engine's totals.
	Flows *FlowsSpec `json:"flows,omitempty"`
}

// AdaptiveSpec configures the scenario's adaptive controller. Zero
// fields take the internal/adaptive defaults.
type AdaptiveSpec struct {
	// IntervalSec is the probe round period (default 1.0).
	IntervalSec float64 `json:"intervalSec,omitempty"`
	// Budget caps probes per round; 0 probes every tracked path.
	Budget int `json:"budget,omitempty"`
	// HalfLifeSec is the estimator EWMA half-life.
	HalfLifeSec float64 `json:"halfLifeSec,omitempty"`
	// ApplyMarginMs / ReleaseMarginMs / JitterFactor / MinSamples /
	// StalenessSec tune the decision layer.
	ApplyMarginMs   float64 `json:"applyMarginMs,omitempty"`
	ReleaseMarginMs float64 `json:"releaseMarginMs,omitempty"`
	JitterFactor    float64 `json:"jitterFactor,omitempty"`
	MinSamples      uint64  `json:"minSamples,omitempty"`
	StalenessSec    float64 `json:"stalenessSec,omitempty"`
	// PenaltyPerFlap / PenaltyHalfLifeSec / SuppressThreshold /
	// ReuseThreshold tune RFC 2439-style flap damping.
	PenaltyPerFlap     float64 `json:"penaltyPerFlap,omitempty"`
	PenaltyHalfLifeSec float64 `json:"penaltyHalfLifeSec,omitempty"`
	SuppressThreshold  float64 `json:"suppressThreshold,omitempty"`
	ReuseThreshold     float64 `json:"reuseThreshold,omitempty"`
	// Prefixes lists "#N" selectors to track; empty tracks every
	// originated, geolocated, unforced prefix.
	Prefixes []string `json:"prefixes,omitempty"`
}

func (a *AdaptiveSpec) validate() error {
	fields := map[string]float64{
		"intervalSec": a.IntervalSec, "halfLifeSec": a.HalfLifeSec,
		"applyMarginMs": a.ApplyMarginMs, "releaseMarginMs": a.ReleaseMarginMs,
		"stalenessSec": a.StalenessSec, "penaltyPerFlap": a.PenaltyPerFlap,
		"penaltyHalfLifeSec": a.PenaltyHalfLifeSec,
		"suppressThreshold":  a.SuppressThreshold, "reuseThreshold": a.ReuseThreshold,
	}
	// Sorted so two bad fields always report the same one first.
	for _, name := range detsort.Keys(fields) {
		if fields[name] < 0 {
			return fmt.Errorf("adaptive: negative %s", name)
		}
	}
	if a.Budget < 0 {
		return fmt.Errorf("adaptive: negative budget")
	}
	for _, sel := range a.Prefixes {
		if !strings.HasPrefix(sel, "#") {
			return fmt.Errorf("adaptive: prefix selector %q (want \"#N\")", sel)
		}
	}
	return nil
}

// FlowsSpec configures the scenario's aggregate flow engine. Zero
// fields take the internal/flowsim defaults.
type FlowsSpec struct {
	// EpochSec is the aggregation interval; Shards the number of
	// staggered epoch queues.
	EpochSec float64 `json:"epochSec,omitempty"`
	Shards   int     `json:"shards,omitempty"`
	// MaxPaths caps the multipath fan-out per group (default 2, hard cap
	// flowsim.MaxPaths); MaxSkewMs is the path-selection skew gate
	// (default 30): candidate overlay paths slower than the fastest by
	// more than this are not used at all.
	MaxPaths  int     `json:"maxPaths,omitempty"`
	MaxSkewMs float64 `json:"maxSkewMs,omitempty"`
	// MaxReorderMs bounds each group's receiver reorder buffer (0 = no
	// bound); DupFraction duplicates that fraction of traffic on the two
	// fastest paths for loss repair (ignored for single-path groups).
	MaxReorderMs float64 `json:"maxReorderMs,omitempty"`
	DupFraction  float64 `json:"dupFraction,omitempty"`
	// TailMs is the fixed per-path tail for the legs the fabric doesn't
	// model (client access, external egress leg), making overlay totals
	// comparable with the events' directMs.
	TailMs float64 `json:"tailMs,omitempty"`
	// Offload enables the overlay/direct offload controller; the rest
	// tune its hysteresis (flowsim defaults when zero).
	Offload        bool    `json:"offload,omitempty"`
	OffloadBelowMs float64 `json:"offloadBelowMs,omitempty"`
	ReclaimAboveMs float64 `json:"reclaimAboveMs,omitempty"`
	DwellSec       float64 `json:"dwellSec,omitempty"`
	MinSamples     uint64  `json:"minSamples,omitempty"`
	HalfLifeSec    float64 `json:"halfLifeSec,omitempty"`
}

func (f *FlowsSpec) validate() error {
	fields := map[string]float64{
		"epochSec": f.EpochSec, "maxSkewMs": f.MaxSkewMs,
		"maxReorderMs": f.MaxReorderMs, "tailMs": f.TailMs,
		"offloadBelowMs": f.OffloadBelowMs, "reclaimAboveMs": f.ReclaimAboveMs,
		"dwellSec": f.DwellSec, "halfLifeSec": f.HalfLifeSec,
	}
	// Sorted so two bad fields always report the same one first.
	for _, name := range detsort.Keys(fields) {
		if fields[name] < 0 {
			return fmt.Errorf("flows: negative %s", name)
		}
	}
	if f.Shards < 0 || f.MaxPaths < 0 {
		return fmt.Errorf("flows: negative shards/maxPaths")
	}
	if f.DupFraction < 0 || f.DupFraction > 1 {
		return fmt.Errorf("flows: dupFraction %v outside [0,1]", f.DupFraction)
	}
	return nil
}

// Event is one scripted action on the timeline. Which fields matter
// depends on Op; Validate rejects malformed combinations.
type Event struct {
	// At is the simulated time the event fires.
	At float64 `json:"at"`
	// Op selects the action; see the Op* constants.
	Op string `json:"op"`
	// Link names an L2 adjacency "SIN-SYD" (link-down, link-up,
	// flap-link, delay-spike).
	Link string `json:"link,omitempty"`
	// PoP names a PoP by code (pop-fail, pop-recover, announce-burst's
	// egress site, media-flow's ingress).
	PoP string `json:"pop,omitempty"`
	// Router selects an egress router "SYD:1" (egress-down, egress-up,
	// force-exit).
	Router string `json:"router,omitempty"`
	// Prefix selects a destination: "#N" is the N-th originated prefix,
	// "egress=CODE" the first prefix whose steady-state egress is that
	// PoP (pinned there via force-exit when none is, mirroring the
	// failover study).
	Prefix string `json:"prefix,omitempty"`
	// Count sizes announce-burst / withdraw-burst.
	Count int `json:"count,omitempty"`
	// ExtraMs is the delay-spike magnitude.
	ExtraMs float64 `json:"extraMs,omitempty"`
	// DurSec is the delay-spike or media-flow duration.
	DurSec float64 `json:"durSec,omitempty"`
	// PeriodSec and Cycles shape flap-link (down at At + i*period, up
	// half a period later).
	PeriodSec float64 `json:"periodSec,omitempty"`
	Cycles    int     `json:"cycles,omitempty"`
	// RatePps is each aggregate flow's packet rate and DirectMs the
	// population's direct-Internet delay alternative (0 = none), both
	// for agg-flows.
	RatePps  float64 `json:"ratePps,omitempty"`
	DirectMs float64 `json:"directMs,omitempty"`
	// SettleSec overrides the quiesce window before this event's
	// checkpoint; 0 means the default (past detection plus up-hold).
	SettleSec float64 `json:"settleSec,omitempty"`
}

// Event ops.
const (
	OpLinkDown      = "link-down"
	OpLinkUp        = "link-up"
	OpFlapLink      = "flap-link"
	OpPoPFail       = "pop-fail"
	OpPoPRecover    = "pop-recover"
	OpDelaySpike    = "delay-spike"
	OpEgressDown    = "egress-down"
	OpEgressUp      = "egress-up"
	OpForceExit     = "force-exit"
	OpUnforce       = "unforce"
	OpExempt        = "exempt"
	OpUnexempt      = "unexempt"
	OpAnnounceBurst = "announce-burst"
	OpWithdrawBurst = "withdraw-burst"
	OpMediaFlow     = "media-flow"
	// Adaptive-only ops (the spec must set "adaptive"). probe-bias adds
	// ExtraMs to every probe of the (PoP, Prefix) path — PoP is a code
	// or "geo" for the prefix's geographically predicted egress; ExtraMs
	// 0 clears the bias. probe-oscillate toggles the bias on for half of
	// each period, off for the other half, Cycles times — the flap-
	// damping workload. checkpoint observes state without acting (needs
	// "adaptive" or "flows"), so background-controller convergence can
	// be watched mid-run.
	OpProbeBias      = "probe-bias"
	OpProbeOscillate = "probe-oscillate"
	OpCheckpoint     = "checkpoint"
	// agg-flows (the spec must set "flows") launches Count aggregate
	// flows of RatePps each from Link's first PoP to its second for
	// DurSec, over overlay paths selected from the fabric, with DirectMs
	// as the direct-Internet alternative. Like media-flow it is traffic,
	// not a control event: it runs across later checkpoints and is
	// settled by the final one.
	OpAggFlows = "agg-flows"
)

// defaultSettleSec is the quiesce window between an event and its
// checkpoint: comfortably past liveness detection (150 ms) plus the
// up-hold hysteresis (1 s) so both halves of any transition have landed.
const defaultSettleSec = 2.5

// settle returns the event's quiesce window.
func (ev *Event) settle() float64 {
	if ev.SettleSec > 0 {
		return ev.SettleSec
	}
	return defaultSettleSec
}

// checkpointAt returns the simulated time of the event's checkpoint: the
// settle window after the event's *last* action (flaps stretch over
// cycles, delay spikes over their duration).
func (ev *Event) checkpointAt() float64 {
	end := ev.At
	switch ev.Op {
	case OpFlapLink, OpProbeOscillate:
		end += float64(ev.Cycles) * ev.PeriodSec
	case OpDelaySpike:
		end += ev.DurSec
	}
	return end + ev.settle()
}

// Validate checks the spec's internal consistency — without assembling
// an environment, so sweeps can reject bad input cheaply.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if s.NumAS < 0 {
		return fmt.Errorf("scenario %s: negative numAS", s.Name)
	}
	if s.Adaptive != nil {
		if err := s.Adaptive.validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Flows != nil {
		if err := s.Flows.validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	// The first event may not fire before the warmup checkpoint.
	prev := warmupCheckpointSec
	for i := range s.Events {
		ev := &s.Events[i]
		switch ev.Op {
		case OpProbeBias, OpProbeOscillate:
			if s.Adaptive == nil {
				return fmt.Errorf("scenario %s: event %d: op %s needs \"adaptive\" set", s.Name, i, ev.Op)
			}
		case OpCheckpoint:
			// Pure observation: meaningful whenever a background
			// controller (adaptive or flows) evolves between events.
			if s.Adaptive == nil && s.Flows == nil {
				return fmt.Errorf("scenario %s: event %d: op %s needs \"adaptive\" or \"flows\" set", s.Name, i, ev.Op)
			}
		case OpAggFlows:
			if s.Flows == nil {
				return fmt.Errorf("scenario %s: event %d: op %s needs \"flows\" set", s.Name, i, ev.Op)
			}
		}
		if ev.At < prev {
			return fmt.Errorf("scenario %s: event %d (%s) at %g fires inside the previous checkpoint's settle window (ends %g)",
				s.Name, i, ev.Op, ev.At, prev)
		}
		if err := ev.validate(); err != nil {
			return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
		}
		// Flows (per-packet media and aggregate) run concurrently with
		// later events by design; everything else must quiesce before
		// the next event fires.
		if ev.Op != OpMediaFlow && ev.Op != OpAggFlows {
			prev = ev.checkpointAt()
		}
	}
	return nil
}

func (ev *Event) validate() error {
	needLink := func() error {
		if len(strings.Split(ev.Link, "-")) != 2 {
			return fmt.Errorf("%s needs link \"A-B\", got %q", ev.Op, ev.Link)
		}
		return nil
	}
	switch ev.Op {
	case OpLinkDown, OpLinkUp:
		return needLink()
	case OpFlapLink:
		if ev.PeriodSec <= 0 || ev.Cycles <= 0 {
			return fmt.Errorf("flap-link needs periodSec > 0 and cycles > 0")
		}
		return needLink()
	case OpDelaySpike:
		if ev.ExtraMs <= 0 || ev.DurSec <= 0 {
			return fmt.Errorf("delay-spike needs extraMs > 0 and durSec > 0")
		}
		return needLink()
	case OpPoPFail, OpPoPRecover:
		if ev.PoP == "" {
			return fmt.Errorf("%s needs pop", ev.Op)
		}
	case OpEgressDown, OpEgressUp:
		if ev.Router == "" {
			return fmt.Errorf("%s needs router \"CODE:N\"", ev.Op)
		}
	case OpForceExit:
		if ev.Router == "" || ev.Prefix == "" {
			return fmt.Errorf("force-exit needs router and prefix")
		}
	case OpUnforce, OpExempt, OpUnexempt:
		if ev.Prefix == "" {
			return fmt.Errorf("%s needs prefix", ev.Op)
		}
	case OpAnnounceBurst:
		if ev.Count <= 0 || ev.PoP == "" {
			return fmt.Errorf("announce-burst needs count > 0 and pop")
		}
	case OpWithdrawBurst:
		if ev.Count <= 0 {
			return fmt.Errorf("withdraw-burst needs count > 0")
		}
	case OpMediaFlow:
		if ev.PoP == "" || ev.Prefix == "" || ev.DurSec <= 0 {
			return fmt.Errorf("media-flow needs pop (ingress), prefix and durSec > 0")
		}
	case OpAggFlows:
		if ev.Count <= 0 || ev.RatePps <= 0 || ev.DurSec <= 0 {
			return fmt.Errorf("agg-flows needs count > 0, ratePps > 0 and durSec > 0")
		}
		if ev.DirectMs < 0 {
			return fmt.Errorf("agg-flows needs directMs >= 0")
		}
		return needLink()
	case OpProbeBias:
		if ev.PoP == "" || ev.Prefix == "" {
			return fmt.Errorf("probe-bias needs pop (code or \"geo\") and prefix")
		}
	case OpProbeOscillate:
		if ev.PoP == "" || ev.Prefix == "" || ev.ExtraMs == 0 ||
			ev.PeriodSec <= 0 || ev.Cycles <= 0 {
			return fmt.Errorf("probe-oscillate needs pop, prefix, extraMs != 0, periodSec > 0 and cycles > 0")
		}
	case OpCheckpoint:
		// A pure observation point: any operand is a spec mistake.
		if ev.PoP != "" || ev.Prefix != "" || ev.Link != "" || ev.Router != "" ||
			ev.ExtraMs != 0 || ev.PeriodSec != 0 || ev.Cycles != 0 ||
			ev.DurSec != 0 || ev.Count != 0 || ev.RatePps != 0 || ev.DirectMs != 0 {
			return fmt.Errorf("checkpoint takes no operands")
		}
	default:
		return fmt.Errorf("unknown op %q", ev.Op)
	}
	return nil
}

// end returns the simulated time the run must reach: past every
// checkpoint, every flow's finish, and a drain window for in-flight
// packets so conservation can be checked exactly.
func (s *Spec) end() float64 {
	end := 0.0
	for i := range s.Events {
		ev := &s.Events[i]
		if cp := ev.checkpointAt(); cp > end {
			end = cp
		}
		if ev.Op == OpMediaFlow || ev.Op == OpAggFlows {
			if fin := ev.At + ev.DurSec + 2.0; fin > end {
				end = fin
			}
		}
	}
	if s.EndSec > end {
		end = s.EndSec
	}
	return end
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load returns the embedded spec with the given name.
func Load(name string) (*Spec, error) {
	data, err := specFS.ReadFile("specs/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("scenario: no embedded spec %q", name)
	}
	return ParseSpec(data)
}

// Names lists every embedded spec in sorted order.
func Names() []string {
	entries, err := fs.ReadDir(specFS, "specs")
	if err != nil {
		panic(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(out)
	return out
}
