package scenario

import "fmt"

// SweepFailure is one seed that violated an invariant, shrunk to the
// shortest event prefix that still fails so the repro is minimal.
type SweepFailure struct {
	// Seed is the failing seed.
	Seed uint64
	// Err is the invariant violation at the minimal prefix.
	Err error
	// MinEvents is the length of the minimal failing event prefix (0
	// means the world fails its warmup checkpoint with no events at all).
	MinEvents int
	// Repro is a copy-pasteable command reproducing the failure.
	Repro string
}

// Sweep runs the spec under each seed in turn and shrinks every failure
// to its minimal event prefix. A nil return means every seed passed.
func Sweep(spec *Spec, seeds []uint64) []SweepFailure {
	var fails []SweepFailure
	for _, seed := range seeds {
		s := *spec
		s.Seed = seed
		if _, err := Run(&s); err != nil {
			fails = append(fails, shrink(spec, seed, err))
		}
	}
	return fails
}

// Truncate returns a copy of the spec keeping only the first n events —
// the sweep's shrinking step, and the -events repro knob.
func (s *Spec) Truncate(n int) *Spec {
	out := *s
	if n >= 0 && n < len(s.Events) {
		out.Events = s.Events[:n]
	}
	return &out
}

// shrink finds the shortest event prefix that still fails under the
// seed. Timelines are short, so a linear scan from the empty prefix up
// is cheaper than bisecting and always yields the true minimum.
func shrink(spec *Spec, seed uint64, full error) SweepFailure {
	min, minErr := len(spec.Events), full
	for k := 0; k <= len(spec.Events); k++ {
		s := spec.Truncate(k)
		s.Seed = seed
		if _, err := Run(s); err != nil {
			min, minErr = k, err
			break
		}
	}
	return SweepFailure{
		Seed:      seed,
		Err:       minErr,
		MinEvents: min,
		Repro: fmt.Sprintf("go run ./cmd/experiments -run scenario -spec %s -seed %d -events %d -numas %d",
			spec.Name, seed, min, spec.NumAS),
	}
}
