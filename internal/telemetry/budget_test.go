package telemetry

import "testing"

// Hot-path budgets in ns/op. The counter budget is the headline number
// from DESIGN.md: an instrumented hot path (FIB lookup, netsim packet
// hop, BFD hello rx) pays one atomic add, which must stay within
// budgetCounterNs on commodity hardware. The others bound the rest of
// the per-event API.
const (
	budgetCounterNs   = 25
	budgetHistogramNs = 150
	budgetVecHitNs    = 25 // pre-resolved handle, identical to Counter
)

// TestBudgetTest enforces the hot-path overhead budget. CI runs it via
// `go test -run BudgetTest ./internal/telemetry`. It measures with
// testing.Benchmark and takes the best of three runs to shed scheduler
// noise; it skips under -race and -short, where per-op cost reflects
// instrumentation rather than design.
func TestBudgetTest(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments atomics; budget not meaningful")
	}
	if testing.Short() {
		t.Skip("skipping budget measurement in -short mode")
	}

	r := New()
	c := r.Counter("budget_ops_total", "")
	h := r.Histogram("budget_latency_seconds", "", nil)
	pre := r.CounterVec("budget_hits_total", "", "pop").With("LON")

	cases := []struct {
		name   string
		budget float64 // ns/op
		fn     func(b *testing.B)
	}{
		{"counter_add", budgetCounterNs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
		}},
		{"vec_preresolved_add", budgetVecHitNs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pre.Inc()
			}
		}},
		{"histogram_observe", budgetHistogramNs, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.Observe(0.0042)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			best := bestOfThree(tc.fn)
			t.Logf("%s: %.1f ns/op (budget %.0f)", tc.name, best, tc.budget)
			if best > tc.budget {
				t.Errorf("%s costs %.1f ns/op, over the %.0f ns/op budget", tc.name, best, tc.budget)
			}
		})
	}
}

func bestOfThree(fn func(b *testing.B)) float64 {
	best := float64(0)
	for i := 0; i < 3; i++ {
		res := testing.Benchmark(fn)
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		if i == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// Benchmarks for manual inspection (`go test -bench . ./internal/telemetry`).

func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("bench_ops_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := New().Counter("bench_ops_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkVecWithResolution(b *testing.B) {
	v := New().CounterVec("bench_hits_total", "", "pop")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("LON").Inc() // cold-path shape: resolve every time
	}
}

func BenchmarkVecPreResolved(b *testing.B) {
	h := New().CounterVec("bench_hits_total", "", "pop").With("LON")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Inc() // hot-path shape
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_latency_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := New().Gauge("bench_depth_current", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkReservoirObserve(b *testing.B) {
	r := NewReservoir(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe(float64(i))
	}
}

func BenchmarkRender(b *testing.B) {
	r := goldenRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Render()
	}
}

func BenchmarkTracerEvent(b *testing.B) {
	tr := NewTracer(nil, DefaultTraceCap)
	id := tr.StartTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event(id, "bench", "tick")
	}
}
