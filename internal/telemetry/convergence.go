package telemetry

import (
	"sync"
)

// This file is the convergence span layer: every routing-plane event —
// a BGP UPDATE batch, a link or PoP failover, an adaptive override, a
// management drain, a churn burst — gets an event ID that propagates
// causally through ingest, best-path selection, geo assignment, FIB
// compilation, and forwarding-plane invalidation. Each stage records
// its latency into convergence_stage_seconds{stage}, the whole event
// into convergence_seconds, and the event's decomposition into the
// Tracer as one trace of per-stage spans. The layer is clock-agnostic:
// a virtual-clock harness (internal/scenario) observes all-zero
// durations and stays byte-deterministic, while wall-clock deployments
// (vnsd, the soak harness) mark the latency families volatile and get
// real decompositions.

// Stage names of convergence_stage_seconds, in pipeline order:
// UPDATE/op ingest, RIB best-path selection, geo local-pref
// assignment, FIB trie compilation, and forwarding-plane invalidation
// (the flush fan-out minus the compiles it contains, so the stages
// tile the event without double counting).
const (
	StageIngest     = "ingest"
	StageSelect     = "select"
	StageGeoRR      = "georr"
	StageFIBCompile = "fib_compile"
	StageForwarding = "forwarding"
)

// ConvStages lists every stage in pipeline order, for status lines and
// quantile rendering.
var ConvStages = []string{StageIngest, StageSelect, StageGeoRR, StageFIBCompile, StageForwarding}

// Event kinds of convergence_events_total.
const (
	ConvUpdate   = "update"   // BGP UPDATE batch through the reflector
	ConvFailover = "failover" // link/PoP liveness reconvergence
	ConvOverride = "override" // adaptive measured-delay override
	ConvDrain    = "drain"    // management egress drain/undrain
	ConvChurn    = "churn"    // scripted announce/withdraw burst
	ConvMgmt     = "mgmt"     // management force/exempt override
)

// ConvKinds lists every event kind; the counters are pre-created so the
// family renders deterministically whether or not a kind has fired.
var ConvKinds = []string{ConvChurn, ConvDrain, ConvFailover, ConvMgmt, ConvOverride, ConvUpdate}

// ConvVolatileFamilies are the convergence families whose values derive
// from the deployment's clock; daemons pass them to MarkVolatile so the
// admin endpoint shows latencies while Snapshot stays deterministic.
// (Event and stage counts are deterministic on either clock and stay
// pinned.)
var ConvVolatileFamilies = []string{
	"convergence_stage_seconds",
	"convergence_seconds",
	"convergence_stage_quantile_seconds",
}

// Convergence owns the convergence-event metric families and the
// currently active event. One instance is shared by every layer of a
// deployment (the forwarding plane constructs it; the reflector,
// failover controller, and adaptive controller borrow it), because the
// event ID handoff — "this FIB compile belongs to that UPDATE" — is
// per-instance state, not per-registry state. All methods are safe for
// concurrent use and safe on a nil *Convergence, so instrumentation
// sites call unconditionally.
type Convergence struct {
	tracer *Tracer
	clock  func() float64

	events map[string]*Counter
	vec    *CounterVec
	stages map[string]*Histogram
	total  *Histogram

	mu     sync.Mutex
	nextID uint64
	active *ConvEvent
}

// NewConvergence registers the convergence families in reg and returns
// the span layer. Span records go to tracer (nil disables them but
// keeps the histograms); clock supplies stage timestamps and defaults
// to the tracer's clock — virtual for simulation harnesses, a
// wall-seconds adapter for daemons. When tracer is non-nil the ring's
// eviction count is also exported as trace_dropped_total, so span loss
// under burst is visible instead of silent.
func NewConvergence(reg *Registry, tracer *Tracer, clock func() float64) *Convergence {
	if clock == nil {
		clock = tracer.Now
	}
	c := &Convergence{
		tracer: tracer,
		clock:  clock,
		events: make(map[string]*Counter, len(ConvKinds)),
		stages: make(map[string]*Histogram, len(ConvStages)),
	}
	c.vec = reg.CounterVec("convergence_events_total", "routing-plane convergence events, by kind", "kind")
	for _, k := range ConvKinds {
		c.events[k] = c.vec.With(k)
	}
	stageVec := reg.HistogramVec("convergence_stage_seconds", "per-stage convergence latency", DefBuckets, "stage")
	for _, s := range ConvStages {
		c.stages[s] = stageVec.With(s)
	}
	c.total = reg.Histogram("convergence_seconds", "end-to-end convergence latency per event", DefBuckets)
	reg.RegisterFunc("convergence_stage_quantile_seconds", "stage-latency quantiles (p50/p99)",
		KindGauge, []string{"quantile", "stage"}, func(emit func([]string, float64)) {
			for _, s := range ConvStages {
				h := c.stages[s]
				emit([]string{"0.5", s}, h.Quantile(0.5))
				emit([]string{"0.99", s}, h.Quantile(0.99))
			}
		})
	if tracer != nil {
		reg.RegisterFunc("trace_dropped_total", "spans evicted from the tracer ring",
			KindCounter, nil, func(emit func([]string, float64)) {
				emit(nil, float64(tracer.Dropped()))
			})
	}
	return c
}

// Now reads the convergence clock (0 on a nil receiver).
func (c *Convergence) Now() float64 {
	if c == nil {
		return 0
	}
	return c.clock()
}

// Begin opens a convergence event of the given kind, makes it the
// active event (the one FIB compiles are attributed to), and returns
// it. Returns nil on a nil receiver. Mutation paths are serialized in
// every deployment (the reflector's batch lock, the failover
// controller's mutex, the simulation goroutine), so at most one event
// is normally in flight; under genuine concurrency the newest event
// wins the attribution and earlier ones still record their own stages.
func (c *Convergence) Begin(kind string) *ConvEvent {
	if c == nil {
		return nil
	}
	start := c.clock()
	c.mu.Lock()
	c.nextID++
	ev := &ConvEvent{conv: c, id: c.nextID, kind: kind, start: start}
	c.active = ev
	c.mu.Unlock()
	if ctr, ok := c.events[kind]; ok {
		ctr.Inc()
	} else {
		c.vec.With(kind).Inc()
	}
	return ev
}

// ActiveID returns the event ID of the in-flight convergence event, 0
// when none. The forwarding plane stamps FIB invalidations with it
// (fib.Publisher.InvalidateEvent), which is how the ID crosses the
// rib→fib boundary.
func (c *Convergence) ActiveID() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active == nil {
		return 0
	}
	return c.active.id
}

// ObserveCompileFor attributes one published FIB compile of the given
// duration to the event that invalidated it (the fib.Publisher's
// FlushObserver calls this with the event ID it was handed). A compile
// whose event is no longer active — a debounced flush landing after
// Finish — is left to the fib_compile_seconds family alone.
func (c *Convergence) ObserveCompileFor(event uint64, seconds float64) {
	if c == nil || event == 0 {
		return
	}
	c.mu.Lock()
	ev := c.active
	c.mu.Unlock()
	if ev == nil || ev.id != event {
		return
	}
	ev.observeCompile(seconds)
}

// Events returns how many convergence events have begun.
func (c *Convergence) Events() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextID
}

// StageQuantile estimates quantile q of one stage's latency histogram
// (0 on a nil receiver or unknown stage).
func (c *Convergence) StageQuantile(stage string, q float64) float64 {
	if c == nil {
		return 0
	}
	h, ok := c.stages[stage]
	if !ok {
		return 0
	}
	return h.Quantile(q)
}

// StageCount returns how many observations one stage has recorded.
func (c *Convergence) StageCount(stage string) uint64 {
	if c == nil {
		return 0
	}
	h, ok := c.stages[stage]
	if !ok {
		return 0
	}
	return h.Count()
}

// ConvMark captures a stage start: the clock reading and the compile
// seconds attributed so far, so StageExclusive can subtract compiles
// that ran inside the marked window.
type ConvMark struct {
	t       float64
	compile float64
}

// stageObs is one recorded stage for span emission.
type stageObs struct {
	stage   string
	start   float64
	seconds float64
}

// ConvEvent is one in-flight convergence event. Stage methods may be
// called from the publisher goroutines an event fans out to; internal
// state is lock-guarded. All methods are safe on a nil receiver.
type ConvEvent struct {
	conv  *Convergence
	id    uint64
	kind  string
	start float64

	mu       sync.Mutex
	obs      []stageObs
	compile  float64
	compiles int
	done     bool
}

// ID returns the event's ID (0 on nil).
func (ev *ConvEvent) ID() uint64 {
	if ev == nil {
		return 0
	}
	return ev.id
}

// Mark captures the current clock and compile attribution as a stage
// start.
func (ev *ConvEvent) Mark() ConvMark {
	if ev == nil {
		return ConvMark{}
	}
	ev.mu.Lock()
	comp := ev.compile
	ev.mu.Unlock()
	return ConvMark{t: ev.conv.clock(), compile: comp}
}

// Stage closes one stage opened at m: the elapsed clock time is
// observed into convergence_stage_seconds{stage} and remembered for
// span emission at Finish.
func (ev *ConvEvent) Stage(stage string, m ConvMark) {
	if ev == nil {
		return
	}
	ev.record(stage, m.t, ev.conv.clock()-m.t)
}

// StageExclusive closes one stage opened at m, excluding the FIB
// compile time attributed to the event inside the window — the
// forwarding stage wraps publisher flushes whose compiles are already
// the fib_compile stage, and the stages must tile the event without
// double counting.
func (ev *ConvEvent) StageExclusive(stage string, m ConvMark) {
	if ev == nil {
		return
	}
	end := ev.conv.clock()
	ev.mu.Lock()
	comp := ev.compile
	ev.mu.Unlock()
	d := (end - m.t) - (comp - m.compile)
	if d < 0 {
		d = 0
	}
	ev.record(stage, m.t, d)
}

func (ev *ConvEvent) record(stage string, start, seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	if h, ok := ev.conv.stages[stage]; ok {
		h.Observe(seconds)
	}
	ev.mu.Lock()
	if !ev.done {
		ev.obs = append(ev.obs, stageObs{stage: stage, start: start, seconds: seconds})
	}
	ev.mu.Unlock()
}

// observeCompile records one attributed FIB compile (via
// Convergence.ObserveCompileFor).
func (ev *ConvEvent) observeCompile(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	ev.conv.stages[StageFIBCompile].Observe(seconds)
	end := ev.conv.clock()
	ev.mu.Lock()
	if !ev.done {
		ev.compile += seconds
		ev.compiles++
		ev.obs = append(ev.obs, stageObs{stage: StageFIBCompile, start: end - seconds, seconds: seconds})
	}
	ev.mu.Unlock()
}

// Finish closes the event: end-to-end latency lands in
// convergence_seconds, the active slot is released, and the event's
// decomposition is recorded into the tracer as one trace — a parent
// span of the event's kind plus one child span per stage. It returns
// the end-to-end and summed-stage seconds, so harnesses (the soak
// run's additivity check) can verify the stages tile the event.
func (ev *ConvEvent) Finish() (total, stageSum float64) {
	if ev == nil {
		return 0, 0
	}
	c := ev.conv
	end := c.clock()
	total = end - ev.start
	if total < 0 {
		total = 0
	}
	c.total.Observe(total)

	ev.mu.Lock()
	obs := ev.obs
	compiles := ev.compiles
	ev.done = true
	ev.mu.Unlock()
	for _, o := range obs {
		stageSum += o.seconds
	}

	c.mu.Lock()
	if c.active == ev {
		c.active = nil
	}
	c.mu.Unlock()

	if c.tracer != nil {
		id := c.tracer.StartTrace()
		c.tracer.Record(id, "convergence", ev.kind, ev.start, end,
			Uint("event", ev.id), Int("stages", len(obs)), Int("compiles", compiles))
		for _, o := range obs {
			c.tracer.Record(id, "convergence", o.stage, o.start, o.start+o.seconds,
				Uint("event", ev.id))
		}
	}
	return total, stageSum
}
