package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fakeClock is a manually advanced convergence clock.
type fakeClock struct{ t float64 }

func (f *fakeClock) now() float64      { return f.t }
func (f *fakeClock) advance(d float64) { f.t += d }

func TestConvergenceStageTiling(t *testing.T) {
	r := New()
	clk := &fakeClock{}
	c := NewConvergence(r, nil, clk.now)

	ev := c.Begin(ConvUpdate)
	m := ev.Mark()
	clk.advance(0.010)
	ev.Stage(StageIngest, m)
	m = ev.Mark()
	clk.advance(0.020)
	ev.Stage(StageSelect, m)

	// Forwarding window containing one attributed 5ms compile: the
	// exclusive stage must subtract it so the stages tile the event.
	m = ev.Mark()
	clk.advance(0.030)
	c.ObserveCompileFor(ev.ID(), 0.005)
	ev.StageExclusive(StageForwarding, m)

	total, stageSum := ev.Finish()
	if want := 0.060; math.Abs(total-want) > 1e-12 {
		t.Errorf("total = %v, want %v", total, want)
	}
	// 10ms + 20ms + 5ms compile + (30ms − 5ms) forwarding = 60ms.
	if math.Abs(stageSum-total) > 1e-12 {
		t.Errorf("stage sum %v does not tile total %v", stageSum, total)
	}
	if got := c.StageCount(StageFIBCompile); got != 1 {
		t.Errorf("fib_compile count = %d, want 1", got)
	}
	if got := c.StageQuantile(StageForwarding, 0.5); got <= 0 {
		t.Errorf("forwarding p50 = %v, want > 0", got)
	}
	if got := c.Events(); got != 1 {
		t.Errorf("events = %d, want 1", got)
	}
}

// TestConvergenceEventIDHandoff covers the rib→fib boundary contract:
// only the compile stamped with the active event's ID is attributed;
// stale IDs (a debounced flush landing after Finish) and foreign IDs
// fall through to the standalone compile family.
func TestConvergenceEventIDHandoff(t *testing.T) {
	r := New()
	clk := &fakeClock{}
	c := NewConvergence(r, nil, clk.now)

	first := c.Begin(ConvChurn)
	second := c.Begin(ConvChurn)
	if got := c.ActiveID(); got != second.ID() {
		t.Fatalf("ActiveID = %d, want newest event %d", got, second.ID())
	}

	c.ObserveCompileFor(first.ID(), 0.003) // superseded: not attributed
	c.ObserveCompileFor(0, 0.003)          // unstamped flush: not attributed
	c.ObserveCompileFor(second.ID(), 0.004)

	_, stageSum := second.Finish()
	if want := 0.004; math.Abs(stageSum-want) > 1e-12 {
		t.Errorf("attributed stage sum = %v, want %v", stageSum, want)
	}
	if got := c.ActiveID(); got != 0 {
		t.Errorf("ActiveID after Finish = %d, want 0", got)
	}
	c.ObserveCompileFor(second.ID(), 0.005) // after Finish: ignored
	if got := c.StageCount(StageFIBCompile); got != 1 {
		// Only the attributed compile reached the stage histogram: the
		// superseded, unstamped, and post-Finish ones all fell through
		// to the standalone compile family.
		t.Errorf("fib_compile count = %d, want 1", got)
	}
	first.Finish()
}

func TestConvergenceSpans(t *testing.T) {
	r := New()
	tr := NewTracer(nil, 128)
	clk := &fakeClock{}
	c := NewConvergence(r, tr, clk.now)

	ev := c.Begin(ConvFailover)
	m := ev.Mark()
	clk.advance(0.5)
	ev.Stage(StageGeoRR, m)
	m = ev.Mark()
	clk.advance(0.25)
	ev.StageExclusive(StageForwarding, m)
	ev.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want parent + 2 stage children", len(spans))
	}
	var names []string
	for _, s := range spans {
		if s.Layer != "convergence" {
			t.Errorf("span layer = %q, want convergence", s.Layer)
		}
		if s.Trace != spans[0].Trace {
			t.Errorf("stage span on trace %d, want parent's %d", s.Trace, spans[0].Trace)
		}
		names = append(names, s.Name)
	}
	want := []string{ConvFailover, StageGeoRR, StageForwarding}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("span[%d] = %q, want %q", i, names[i], want[i])
		}
	}

	// The ring's eviction counter is exported once a tracer is attached.
	if !strings.Contains(r.Render(), "trace_dropped_total 0") {
		t.Errorf("Render missing trace_dropped_total:\n%s", r.Render())
	}
}

func TestConvergenceNilSafe(t *testing.T) {
	var c *Convergence
	if ev := c.Begin(ConvUpdate); ev != nil {
		t.Fatalf("nil Convergence.Begin = %v, want nil", ev)
	}
	c.ObserveCompileFor(1, 0.1)
	if c.ActiveID() != 0 || c.Now() != 0 || c.Events() != 0 {
		t.Error("nil Convergence accessors must return zeros")
	}
	if c.StageQuantile(StageIngest, 0.5) != 0 || c.StageCount(StageIngest) != 0 {
		t.Error("nil Convergence stage accessors must return zeros")
	}

	var ev *ConvEvent
	m := ev.Mark()
	ev.Stage(StageIngest, m)
	ev.StageExclusive(StageForwarding, m)
	if ev.ID() != 0 {
		t.Error("nil event ID must be 0")
	}
	if total, sum := ev.Finish(); total != 0 || sum != 0 {
		t.Error("nil event Finish must return zeros")
	}
}

// TestConvergenceZeroQuantilesDeterministic pins the virtual-clock
// rendering: all-zero observations interpolate inside the first bucket,
// so the quantile gauges are nonzero but exact — safe to pin in
// scenario goldens.
func TestConvergenceZeroQuantilesDeterministic(t *testing.T) {
	r := New()
	clk := &fakeClock{}
	c := NewConvergence(r, nil, clk.now)
	for i := 0; i < 100; i++ {
		ev := c.Begin(ConvChurn)
		m := ev.Mark()
		ev.Stage(StageIngest, m)
		ev.Finish()
	}
	if got, want := c.StageQuantile(StageIngest, 0.5), 5e-05; math.Abs(got-want) > 1e-15 {
		t.Errorf("all-zero p50 = %v, want %v", got, want)
	}
	if got, want := c.StageQuantile(StageIngest, 0.99), 9.9e-05; math.Abs(got-want) > 1e-15 {
		t.Errorf("all-zero p99 = %v, want %v", got, want)
	}
	if r.Render() != r.Render() {
		t.Error("Render not deterministic across calls")
	}
}

// TestHistogramVecConcurrentRender hammers one HistogramVec label from
// many writers while readers render and snapshot the registry, checking
// that every rendered _count/_sum pair is monotone over time. Under
// -race this also proves the Observe fast path publishes safely.
func TestHistogramVecConcurrentRender(t *testing.T) {
	r := New()
	vec := r.HistogramVec("hammer_stage_seconds", "", DefBuckets, "stage")
	hs := []*Histogram{vec.With("a"), vec.With("b")}

	const workers = 8
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hs[w%len(hs)]
			for i := 0; i < iters; i++ {
				h.Observe(float64(i%1000) / 1e6)
			}
		}(w)
	}

	parse := func(render, sample string) float64 {
		for _, line := range strings.Split(render, "\n") {
			if rest, ok := strings.CutPrefix(line, sample+" "); ok {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Errorf("bad sample %q: %v", line, err)
				}
				return v
			}
		}
		return -1 // not rendered yet
	}
	var rg sync.WaitGroup
	for w := 0; w < 4; w++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			lastCount, lastSum := -1.0, -1.0
			for i := 0; i < 100; i++ {
				out := r.Render()
				_ = r.Snapshot()
				count := parse(out, `hammer_stage_seconds_count{stage="a"}`)
				sum := parse(out, `hammer_stage_seconds_sum{stage="a"}`)
				if count < lastCount {
					t.Errorf("count went backwards: %v -> %v", lastCount, count)
				}
				if sum < lastSum {
					t.Errorf("sum went backwards: %v -> %v", lastSum, sum)
				}
				lastCount, lastSum = count, sum
			}
		}()
	}
	wg.Wait()
	rg.Wait()

	var total uint64
	for _, h := range hs {
		total += h.Count()
	}
	if total != workers*iters {
		t.Errorf("total observations = %d, want %d", total, workers*iters)
	}
}
