package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets is the default latency bucket layout in seconds, spanning
// sub-millisecond FIB compiles to multi-second reconvergence.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// MsBuckets is a bucket layout for values already in milliseconds
// (one-way delays, convergence times).
var MsBuckets = []float64{
	0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
}

// Histogram is a lock-free fixed-bucket histogram: Observe is a binary
// search over the immutable bucket bounds plus three atomic adds, safe
// for any number of concurrent observers and renderers.
type Histogram struct {
	// bounds are the inclusive upper bucket bounds, strictly
	// increasing; counts has one extra slot for the +Inf bucket.
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, len(bounds) when none
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and a snapshot of the per-bucket
// (non-cumulative) counts; the final count is the +Inf bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the value at quantile q in [0,1] by linear
// interpolation within the bucket containing it. Values beyond the
// last finite bound clamp to that bound; an empty histogram reads 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= target && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			frac := (target - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}
