package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_ops_total", "ops"); again != c {
		t.Fatal("re-registration did not return the same handle")
	}
	g := r.Gauge("test_depth_current", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNameValidation(t *testing.T) {
	bad := []string{"Lookups", "fib", "fib-lookups", "fib__", "_fib_x", "fib_Lookups", "9fib_x"}
	for _, name := range bad {
		if CheckName(name) {
			t.Errorf("CheckName(%q) accepted a bad name", name)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %q did not panic", name)
				}
			}()
			New().Counter(name, "")
		}()
	}
	good := []string{"fib_lookups_total", "bgp_messages_in_total", "health_sessions_down", "a_b"}
	for _, name := range good {
		if !CheckName(name) {
			t.Errorf("CheckName(%q) rejected a good name", name)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("test_thing_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge re-registration of a counter name did not panic")
		}
	}()
	r.Gauge("test_thing_total", "")
}

func TestVecHandles(t *testing.T) {
	r := New()
	v := r.CounterVec("test_hits_total", "hits", "pop")
	lon := v.With("LON")
	lon.Add(3)
	if v.With("LON") != lon {
		t.Fatal("With did not return the pre-resolved handle")
	}
	v.With("SIN").Inc()
	out := r.Render()
	for _, want := range []string{`test_hits_total{pop="LON"} 3`, `test_hits_total{pop="SIN"} 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestVecArityPanics(t *testing.T) {
	r := New()
	v := r.CounterVec("test_hits_total", "hits", "pop")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("LON", "extra")
}

func TestHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
	_, counts := h.Buckets()
	want := []uint64{2, 1, 1, 1} // <=1: {0.5,1}; <=2: {1.5}; <=4: {3}; +Inf: {100}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, counts[i], want[i], counts)
		}
	}
	if q := h.Quantile(0); q < 0 || q > 1 {
		t.Errorf("q0 = %g, want within first bucket", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Errorf("q1 = %g, want clamp to last finite bound 4", q)
	}
	med := h.Quantile(0.5)
	if med < 1 || med > 2 {
		t.Errorf("median = %g, want in (1,2]", med)
	}
	empty := newHistogram(nil)
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestReservoirBounded(t *testing.T) {
	r := NewReservoir(4)
	for i := 1; i <= 10; i++ {
		r.Observe(float64(i))
	}
	if r.Count() != 10 {
		t.Fatalf("lifetime count = %d, want 10", r.Count())
	}
	if r.Sum() != 55 {
		t.Fatalf("lifetime sum = %g, want 55", r.Sum())
	}
	got := r.Snapshot()
	want := []float64{7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
}

func TestReservoirPartialWindow(t *testing.T) {
	r := NewReservoir(100)
	r.Observe(3)
	r.Observe(1)
	got := r.Snapshot()
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("snapshot = %v, want [3 1]", got)
	}
	if NewReservoir(0).Cap() != DefaultReservoirCap {
		t.Fatal("default capacity not applied")
	}
}

func TestRegisterFunc(t *testing.T) {
	r := New()
	r.RegisterFunc("test_links_tx_total", "per-link tx", KindCounter, []string{"link"},
		func(emit func([]string, float64)) {
			emit([]string{"b"}, 2)
			emit([]string{"a"}, 1)
		})
	out := r.Snapshot()
	want := "test_links_tx_total{link=\"a\"} 1\ntest_links_tx_total{link=\"b\"} 2\n"
	if out != want {
		t.Fatalf("snapshot = %q, want %q", out, want)
	}
}

func TestSnapshotExcludesVolatile(t *testing.T) {
	r := New()
	r.Counter("test_stable_total", "").Inc()
	r.Histogram("test_compile_seconds", "", DefBuckets).Observe(0.003)
	r.MarkVolatile("test_compile_seconds")
	snap := r.Snapshot()
	if strings.Contains(snap, "compile_seconds") {
		t.Errorf("snapshot contains volatile family:\n%s", snap)
	}
	if !strings.Contains(r.Render(), "test_compile_seconds_count 1") {
		t.Errorf("full render missing volatile family:\n%s", r.Render())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1:       "1",
		1e7:     "10000000",
		2.5:     "2.5",
		0.00025: "0.00025",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		// Documented: exposition uses "+Inf" only for the synthetic
		// bucket bound; gauges should never carry infinities.
		t.Logf("formatFloat(+Inf) = %q", got)
	}
}
