//go:build !race

package telemetry

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
