//go:build race

package telemetry

// raceEnabled reports whether the race detector is compiled in; the
// hot-path budget test skips itself under -race, where every atomic op
// pays instrumentation cost unrelated to the metric design.
const raceEnabled = true
