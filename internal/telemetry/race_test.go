package telemetry

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentHammer drives every mutating entry point against
// Render/Snapshot from many goroutines. Run under -race this proves the
// lock-free paths are publication-safe.
func TestConcurrentHammer(t *testing.T) {
	r := New()
	c := r.Counter("hammer_ops_total", "")
	g := r.Gauge("hammer_depth_current", "")
	h := r.Histogram("hammer_latency_seconds", "", nil)
	v := r.CounterVec("hammer_hits_total", "", "pop")
	res := NewReservoir(64)
	tr := NewTracer(nil, 128)

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pop := []string{"LON", "NYC", "SIN"}[w%3]
			handle := v.With(pop)
			id := tr.StartTrace()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) / 1000)
				handle.Inc()
				res.Observe(float64(i))
				tr.Event(id, "test", "tick", Int("i", i))
			}
		}(w)
	}
	var rg sync.WaitGroup
	for w := 0; w < 4; w++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; i < 50; i++ {
				_ = r.Render()
				_ = r.Snapshot()
				_ = res.Snapshot()
				_ = tr.WriteJSONL(io.Discard)
			}
		}()
	}
	wg.Wait()
	rg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := res.Count(); got != workers*iters {
		t.Errorf("reservoir count = %d, want %d", got, workers*iters)
	}
	var sum uint64
	for _, pop := range []string{"LON", "NYC", "SIN"} {
		sum += v.With(pop).Value()
	}
	if sum != workers*iters {
		t.Errorf("vec sum = %d, want %d", sum, workers*iters)
	}
}
