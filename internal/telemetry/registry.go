package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a metric family for the exposition TYPE line.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// nameRE enforces snake_case with at least one underscore, so every
// metric carries a subsystem prefix ("fib_lookups_total", never
// "lookups"). The vnslint metricname analyzer enforces the same shape
// statically at registration call sites.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// labelRE is the legal shape of a label name.
var labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// CheckName reports whether name is a legal metric name.
func CheckName(name string) bool { return nameRE.MatchString(name) }

// CheckLabel reports whether name is a legal label name. The vnslint
// metricname analyzer applies the same check statically.
func CheckLabel(name string) bool { return labelRE.MatchString(name) }

// child is one labeled instance inside a vector family.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one registered metric name: a scalar, a labeled vector, or
// a render-time collector.
type family struct {
	name     string
	help     string
	kind     Kind
	labels   []string
	volatile bool
	bounds   []float64

	// Scalar instance (labels empty, collect nil).
	c *Counter
	g *Gauge
	h *Histogram

	// Vector instances, keyed by joined label values.
	mu       sync.Mutex
	children map[string]*child

	// Render-time collector (RegisterFunc).
	collect func(emit func(labelValues []string, v float64))
}

// Registry holds metric families and renders them. All methods are safe
// for concurrent use; registration is idempotent by name (repeated
// registration with identical kind and labels returns the same
// handles, so packages can register lazily without coordination).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the family for name, creating it on first use and
// panicking on a name/kind/label mismatch — misregistration is a
// programming error no caller can handle.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: metric name %q is not snake_case with a subsystem prefix", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("telemetry: metric %q label %q is not snake_case", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v%v, was %v%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, bounds: bounds}
	if len(labels) > 0 {
		f.children = make(map[string]*child)
	} else {
		switch kind {
		case KindCounter:
			f.c = &Counter{}
		case KindGauge:
			f.g = &Gauge{}
		case KindHistogram:
			f.h = newHistogram(bounds)
		}
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or finds) an unlabeled counter and returns its
// handle.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).c
}

// Gauge registers (or finds) an unlabeled gauge and returns its handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).g
}

// Histogram registers (or finds) an unlabeled histogram with the given
// upper bucket bounds (DefBuckets when nil) and returns its handle.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, bounds).h
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, bounds)}
}

// RegisterFunc registers a render-time collector family: collect is
// invoked on every Render/Snapshot and emits one sample per label-value
// tuple. Use it to re-export state a subsystem already maintains
// atomically (netsim link counters, fib engine outcomes) without
// double-counting on the hot path.
func (r *Registry) RegisterFunc(name, help string, kind Kind, labels []string,
	collect func(emit func(labelValues []string, v float64))) {
	f := r.register(name, help, kind, labels, nil)
	r.mu.Lock()
	f.collect = collect
	r.mu.Unlock()
}

// MarkVolatile flags families whose values derive from the wall clock
// or other run-dependent state (compile latencies, convergence
// timings). Volatile families render normally on the admin endpoint
// but are excluded from Snapshot, which golden tests and the scenario
// harness require to be byte-stable.
func (r *Registry) MarkVolatile(names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		if f, ok := r.families[n]; ok {
			f.volatile = true
		}
	}
}

// Names returns all registered family names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.families))
	for n := range r.families {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

const keySep = "\x1f"

func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, keySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	vals := make([]string, len(values))
	copy(vals, values)
	c := &child{values: vals}
	switch f.kind {
	case KindCounter:
		c.c = &Counter{}
	case KindGauge:
		c.g = &Gauge{}
	case KindHistogram:
		c.h = newHistogram(f.bounds)
	}
	f.children[key] = c
	return c
}

// CounterVec is a labeled counter family. With resolves a label tuple
// to its pre-resolved handle; resolution locks a map and belongs on
// the cold path, the returned *Counter on the hot path.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.childFor(values).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.childFor(values).g }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.childFor(values).h }
