package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// sample is one exposition line before formatting.
type sample struct {
	// suffix extends the family name ("_bucket", "_sum", "_count");
	// empty for plain samples.
	suffix string
	labels []string // label names, parallel to values
	values []string
	value  string // pre-formatted
}

// Render returns the registry's full Prometheus text exposition
// (version 0.0.4): families sorted by name, samples sorted by label
// values, values formatted canonically — the same input always renders
// to the same bytes.
func (r *Registry) Render() string {
	var b strings.Builder
	r.render(&b, true, true)
	return b.String()
}

// Snapshot returns the deterministic subset of the exposition: sample
// lines only (no HELP/TYPE), with volatile families (wall-clock
// derived) excluded. Scenario golden traces pin this output
// byte-for-byte.
func (r *Registry) Snapshot() string {
	var b strings.Builder
	r.render(&b, false, false)
	return b.String()
}

func (r *Registry) render(b *strings.Builder, header, includeVolatile bool) {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if f.volatile && !includeVolatile {
			continue
		}
		samples := f.samples()
		if len(samples) == 0 {
			continue
		}
		if header {
			fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
			fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
		}
		for _, s := range samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			if len(s.labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(s.values[i]))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(s.value)
			b.WriteByte('\n')
		}
	}
}

// samples flattens one family into sorted exposition lines.
func (f *family) samples() []sample {
	var out []sample
	switch {
	case f.collect != nil:
		f.collect(func(values []string, v float64) {
			vals := make([]string, len(values))
			copy(vals, values)
			out = append(out, sample{labels: f.labels, values: vals, value: formatValue(f.kind, v)})
		})
	case len(f.labels) == 0:
		out = f.appendInstance(out, nil, f.c, f.g, f.h)
	default:
		f.mu.Lock()
		children := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			children = append(children, c)
		}
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool { return lessStrings(children[i].values, children[j].values) })
		for _, c := range children {
			out = f.appendInstance(out, c.values, c.c, c.g, c.h)
		}
	}
	if f.collect != nil {
		sort.Slice(out, func(i, j int) bool { return lessStrings(out[i].values, out[j].values) })
	}
	return out
}

func (f *family) appendInstance(out []sample, values []string, c *Counter, g *Gauge, h *Histogram) []sample {
	switch f.kind {
	case KindCounter:
		return append(out, sample{labels: f.labels, values: values,
			value: strconv.FormatUint(c.Value(), 10)})
	case KindGauge:
		return append(out, sample{labels: f.labels, values: values,
			value: formatFloat(g.Value())})
	case KindHistogram:
		bounds, counts := h.Buckets()
		var cum uint64
		for i, bound := range bounds {
			cum += counts[i]
			out = append(out, sample{
				suffix: "_bucket",
				labels: append(append([]string{}, f.labels...), "le"),
				values: append(append([]string{}, values...), formatFloat(bound)),
				value:  strconv.FormatUint(cum, 10),
			})
		}
		cum += counts[len(bounds)]
		out = append(out, sample{
			suffix: "_bucket",
			labels: append(append([]string{}, f.labels...), "le"),
			values: append(append([]string{}, values...), "+Inf"),
			value:  strconv.FormatUint(cum, 10),
		})
		out = append(out, sample{suffix: "_sum", labels: f.labels, values: values, value: formatFloat(h.Sum())})
		out = append(out, sample{suffix: "_count", labels: f.labels, values: values, value: strconv.FormatUint(h.Count(), 10)})
		return out
	}
	return out
}

// formatValue renders a collector-emitted float according to the
// family kind: counters that carry integral values print as integers.
func formatValue(kind Kind, v float64) string {
	if kind == KindCounter && v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return formatFloat(v)
}

// formatFloat is the canonical float rendering: integral values print
// without an exponent or trailing zeros, everything else in Go's
// shortest 'g' form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func lessStrings(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
