package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry covering every family shape so the
// golden file pins the full exposition surface: scalar counter/gauge,
// labeled vector, histogram (cumulative buckets, sum, count),
// collector, escaping, and sort order.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("fib_lookups_total", "total FIB lookups").Add(42)
	r.Gauge("rib_prefixes_current", "prefixes in the RIB").Set(1207)
	r.Gauge("media_jitter_ms", "smoothed interarrival jitter").Set(3.25)

	v := r.CounterVec("bgp_messages_in_total", "BGP messages received, by type", "type")
	v.With("update").Add(17)
	v.With("keepalive").Add(120)
	v.With("notification").Inc()

	h := r.Histogram("fib_compile_seconds", "FIB compile latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0004)
	h.Observe(0.002)
	h.Observe(0.03)
	h.Observe(0.5)

	r.RegisterFunc("netsim_link_tx_packets_total", "packets transmitted per link",
		KindCounter, []string{"link"}, func(emit func([]string, float64)) {
			emit([]string{"LON-NYC"}, 900)
			emit([]string{"AMS-LON"}, 350)
		})

	r.Counter("health_hellos_tx_total", `hellos sent (escapes: \ " and newline)`).Inc()
	gv := r.GaugeVec("core_egress_up", "egress liveness by PoP", "pop")
	gv.With(`we"ird\pop`).Set(1)
	gv.With("LON").Set(0)
	return r
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestRenderGolden(t *testing.T) {
	r := goldenRegistry()
	first := r.Render()
	checkGolden(t, "render.golden", first)
	// Byte stability: rendering twice must produce identical bytes.
	if second := r.Render(); second != first {
		t.Error("two renders of the same registry differ")
	}
	checkGolden(t, "snapshot.golden", r.Snapshot())
}

func TestRenderSorted(t *testing.T) {
	// Registration order must not leak into output order.
	a, b := New(), New()
	a.Counter("zz_last_total", "").Inc()
	a.Counter("aa_first_total", "").Inc()
	b.Counter("aa_first_total", "").Inc()
	b.Counter("zz_last_total", "").Inc()
	if a.Render() != b.Render() {
		t.Errorf("render depends on registration order:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}
