package telemetry

import "sync"

// DefaultReservoirCap bounds a reservoir created with capacity <= 0.
const DefaultReservoirCap = 1024

// Reservoir is a bounded sample window: it keeps the most recent
// capacity observations in a ring while tracking the lifetime count and
// sum, so long-running daemons can expose percentiles without the
// unbounded slice growth the old health registry suffered from.
// Exact-percentile semantics hold over the retained window.
type Reservoir struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
	n    uint64
	sum  float64
}

// NewReservoir builds a reservoir retaining the last capacity samples
// (DefaultReservoirCap when capacity <= 0).
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		capacity = DefaultReservoirCap
	}
	return &Reservoir{buf: make([]float64, capacity)}
}

// Observe records one sample.
func (r *Reservoir) Observe(v float64) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.n++
	r.sum += v
	r.mu.Unlock()
}

// Count returns the lifetime observation count (not capped by the
// window).
func (r *Reservoir) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Sum returns the lifetime sum.
func (r *Reservoir) Sum() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sum
}

// Cap returns the window capacity.
func (r *Reservoir) Cap() int { return len(r.buf) }

// Snapshot returns the retained samples oldest-first. Before the
// window fills this is every sample ever observed, so callers keep the
// exact-summary semantics of an unbounded series until the cap bites.
func (r *Reservoir) Snapshot() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]float64, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]float64, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
