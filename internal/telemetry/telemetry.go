// Package telemetry is the VNS-wide metrics and tracing core: a
// dependency-free (standard library only) registry of atomic counters,
// gauges, lock-free fixed-bucket histograms, and labeled metric
// vectors, rendered in Prometheus text exposition format, plus a
// virtual-clock-aware trace layer (trace.go) that follows packets and
// routing decisions across layers.
//
// The design rule is that hot paths pay one atomic add and nothing
// else. Registration and label resolution are cold-path operations that
// return pre-resolved handles (*Counter, *Gauge, *Histogram); the FIB
// lookup path, netsim packet hops, and BFD hello receive path hold such
// handles and never touch a map or a lock. The budget is enforced by
// TestBudgetTest: a counter add must stay within 25ns/op.
//
// Subsystems that already maintain their own atomic state (netsim link
// counters, fib engine outcomes) are re-exported without double
// counting through RegisterFunc collectors, which sample that state at
// render time.
//
// Metric names are snake_case with a subsystem prefix
// ("fib_lookups_total"); the registry panics on malformed names at
// registration time and the vnslint metricname analyzer rejects them
// statically.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; handles obtained from a Registry are shared by name.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
//
//vnslint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
//
//vnslint:hotpath
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time value. The zero value is ready to use and
// reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (CAS loop; gauges are not hot-path metrics).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
