package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// TraceID identifies one trace: a packet's journey, a routing decision,
// or a media flow. IDs are assigned sequentially per Tracer so traces
// are deterministic under the virtual clock.
type TraceID uint64

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Uint builds an unsigned integer attribute.
func Uint(k string, v uint64) Attr { return Attr{Key: k, Value: strconv.FormatUint(v, 10)} }

// Float builds a float attribute with canonical formatting.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: formatFloat(v)} }

// Span is one timed operation inside a trace, attributed to the layer
// that performed it ("geoip", "rib", "fib", "netsim", "media"). Start
// and End are in the tracer's clock domain — simulated seconds for
// sim-driven tracers.
type Span struct {
	Trace TraceID
	Seq   uint64 // tracer-wide record order
	Layer string
	Name  string
	Start float64
	End   float64
	Attrs []Attr // sorted by key
}

// Tracer records spans into a bounded ring. It is virtual-clock aware:
// the clock function supplies timestamps (a netsim.Sim's Now for
// simulations, a wall-clock adapter for daemons), and trace IDs and
// sequence numbers are deterministic counters, never random. All
// methods are safe for concurrent use and safe on a nil *Tracer, so
// instrumentation sites call unconditionally.
type Tracer struct {
	mu      sync.Mutex
	clock   func() float64
	spans   []Span
	next    int
	full    bool
	nextID  uint64
	nextSeq uint64
	dropped uint64
}

// DefaultTraceCap bounds a tracer created with capacity <= 0.
const DefaultTraceCap = 4096

// NewTracer builds a tracer reading timestamps from clock (constant 0
// when nil) and retaining the last capacity spans.
func NewTracer(clock func() float64, capacity int) *Tracer {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{clock: clock, spans: make([]Span, capacity)}
}

// Now reads the tracer's clock.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// StartTrace allocates the next trace ID. id 0 is never assigned, so
// it can mean "untraced".
func (t *Tracer) StartTrace() TraceID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.nextID++
	id := TraceID(t.nextID)
	t.mu.Unlock()
	return id
}

// Record appends one span with explicit timestamps.
func (t *Tracer) Record(id TraceID, layer, name string, start, end float64, attrs ...Attr) {
	if t == nil {
		return
	}
	sorted := make([]Attr, len(attrs))
	copy(sorted, attrs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	t.mu.Lock()
	seq := t.nextSeq
	t.nextSeq++
	if t.full {
		t.dropped++
	}
	t.spans[t.next] = Span{Trace: id, Seq: seq, Layer: layer, Name: name, Start: start, End: end, Attrs: sorted}
	t.next++
	if t.next == len(t.spans) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Event records a zero-duration span stamped with the tracer's clock.
func (t *Tracer) Event(id TraceID, layer, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	now := t.clock()
	t.Record(id, layer, name, now, now, attrs...)
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.spans)
	}
	return t.next
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Traces returns how many trace IDs have been assigned.
func (t *Tracer) Traces() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextID
}

// Spans returns the retained spans in record order (oldest first).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Span, t.next)
		copy(out, t.spans[:t.next])
		return out
	}
	out := make([]Span, 0, len(t.spans))
	out = append(out, t.spans[t.next:]...)
	out = append(out, t.spans[:t.next]...)
	return out
}

// WriteJSONL writes the retained spans as canonical JSONL: one span
// per line, fixed key order, attrs sorted by key, timestamps with six
// decimal places. Equal span sequences always serialize to equal
// bytes, so golden tests can diff trace dumps directly.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, s := range t.Spans() {
		if _, err := io.WriteString(w, s.JSON()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// JSON renders one span as its canonical JSON object.
func (s Span) JSON() string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"trace":%d,"seq":%d,"layer":%s,"name":%s,"start":%s,"end":%s,"attrs":{`,
		s.Trace, s.Seq, jsonString(s.Layer), jsonString(s.Name),
		strconv.FormatFloat(s.Start, 'f', 6, 64), strconv.FormatFloat(s.End, 'f', 6, 64))
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(jsonString(a.Key))
		b.WriteByte(':')
		b.WriteString(jsonString(a.Value))
	}
	b.WriteString("}}")
	return b.String()
}

func jsonString(s string) string {
	out, err := json.Marshal(s)
	if err != nil {
		return `""`
	}
	return string(out)
}
