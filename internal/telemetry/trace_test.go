package telemetry

import (
	"strings"
	"testing"
)

func TestTracerSequentialIDs(t *testing.T) {
	tr := NewTracer(nil, 16)
	if got := tr.StartTrace(); got != 1 {
		t.Fatalf("first trace ID = %d, want 1", got)
	}
	if got := tr.StartTrace(); got != 2 {
		t.Fatalf("second trace ID = %d, want 2", got)
	}
	if tr.Traces() != 2 {
		t.Fatalf("Traces() = %d, want 2", tr.Traces())
	}
}

func TestTracerVirtualClock(t *testing.T) {
	now := 0.0
	tr := NewTracer(func() float64 { return now }, 16)
	id := tr.StartTrace()
	now = 1.5
	tr.Event(id, "netsim", "hop", String("link", "LON-NYC"))
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("len(spans) = %d, want 1", len(spans))
	}
	if spans[0].Start != 1.5 || spans[0].End != 1.5 {
		t.Errorf("event not stamped with virtual clock: %+v", spans[0])
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(nil, 3)
	id := tr.StartTrace()
	for i := 0; i < 5; i++ {
		tr.Record(id, "test", "op", float64(i), float64(i), Int("i", i))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", tr.Dropped())
	}
	spans := tr.Spans()
	for i, s := range spans {
		if want := uint64(i + 2); s.Seq != want {
			t.Errorf("span %d Seq = %d, want %d (oldest-first order)", i, s.Seq, want)
		}
	}
}

func TestSpanJSONCanonical(t *testing.T) {
	tr := NewTracer(nil, 8)
	id := tr.StartTrace()
	// Attrs deliberately out of order: canonical form sorts them.
	tr.Record(id, "rib", "decision", 0.25, 0.25,
		String("prefix", "10.0.0.0/24"), String("egress", "LON"), Int("candidates", 3))
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"trace":1,"seq":0,"layer":"rib","name":"decision","start":0.250000,"end":0.250000,"attrs":{"candidates":"3","egress":"LON","prefix":"10.0.0.0/24"}}` + "\n"
	if b.String() != want {
		t.Errorf("JSONL = %q, want %q", b.String(), want)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	id := tr.StartTrace()
	if id != 0 {
		t.Errorf("nil tracer StartTrace = %d, want 0", id)
	}
	tr.Record(id, "x", "y", 0, 0)
	tr.Event(id, "x", "y")
	if tr.Now() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Traces() != 0 || tr.Spans() != nil {
		t.Error("nil tracer accessors not zero")
	}
	if err := tr.WriteJSONL(&strings.Builder{}); err != nil {
		t.Errorf("nil tracer WriteJSONL: %v", err)
	}
}

func TestTracerDeterminism(t *testing.T) {
	build := func() string {
		now := 0.0
		tr := NewTracer(func() float64 { return now }, 64)
		for f := 0; f < 3; f++ {
			id := tr.StartTrace()
			now = float64(f) * 0.1
			tr.Event(id, "geoip", "lookup", String("addr", "192.0.2.1"))
			tr.Record(id, "fib", "lookup", now, now+0.001, Int("gen", f))
		}
		var b strings.Builder
		_ = tr.WriteJSONL(&b)
		return b.String()
	}
	if build() != build() {
		t.Error("identical trace sequences serialize to different bytes")
	}
}
