package topo

import (
	"vns/internal/geo"
	"vns/internal/loss"
)

// DelayModel turns geography and AS-path structure into round-trip
// times. It models what the paper's probing measures: the minimum RTT
// over a handful of pings, i.e. propagation plus per-hop forwarding cost
// with only residual noise.
//
// Three structural effects the paper identifies are modeled explicitly:
//
//   - trans-Pacific AP networks: prefixes of AP ASes that haul traffic
//     over their own capacity to the US are reached via a US-West
//     waypoint from everywhere outside North America;
//   - poor AP↔Russia connectivity: probes from AP/OC vantages to Russian
//     destinations hairpin through a European hub, producing the large
//     RTTs behind Figure 3's outlier clusters;
//   - region-pair path stretch: inter-region transit paths are longer
//     than the great circle by calibrated factors.
type DelayModel struct {
	topo *Topology
	rng  *loss.RNG
	// USWest is the landing waypoint for trans-Pacific AS paths.
	USWest geo.Place
	// EUHub is the hairpin waypoint for AP/OC probes to Russia.
	EUHub geo.Place
	// PerHopMs is the forwarding cost added per AS hop.
	PerHopMs float64
}

// NewDelayModel returns the calibrated model used by the experiments.
func NewDelayModel(t *Topology, seed uint64) *DelayModel {
	return &DelayModel{
		topo:     t,
		rng:      loss.NewRNG(seed),
		USWest:   geo.MustLookup("LosAngeles"),
		EUHub:    geo.MustLookup("Frankfurt"),
		PerHopMs: 0.7,
	}
}

// regionStretch is the multiplicative path stretch over the great
// circle for each (vantage region, destination region) pair. Values are
// calibrated so intra-region RTTs look like well-peered domestic paths
// and AP-involved inter-region paths look like the congested, indirect
// transit the paper measures.
func regionStretch(from, to geo.Region) float64 {
	from, to = geo.PoPRegion(from), geo.PoPRegion(to)
	if from == to {
		return 1.20
	}
	pair := func(a, b geo.Region) bool {
		return (from == a && to == b) || (from == b && to == a)
	}
	switch {
	case pair(geo.RegionEU, geo.RegionNA):
		return 1.25
	case pair(geo.RegionNA, geo.RegionAP):
		return 1.35
	case pair(geo.RegionEU, geo.RegionAP):
		return 1.55
	case pair(geo.RegionNA, geo.RegionOC), pair(geo.RegionAP, geo.RegionOC):
		return 1.35
	case pair(geo.RegionEU, geo.RegionOC):
		return 1.50
	default:
		return 1.40
	}
}

// RTT returns the modeled minimum round-trip time in milliseconds from a
// vantage at `from` to destination prefix dst, over a transit path of
// asHops AS-level hops. extraWaypoints force additional detours before
// any structural waypoints (the VNS layer uses this for the London
// upstream hairpin). The result is deterministic for a given
// (model seed, vantage, destination).
func (m *DelayModel) RTT(from geo.Place, dst *PrefixInfo, asHops int, extraWaypoints ...geo.LatLon) float64 {
	waypoints := make([]geo.LatLon, 0, 5)
	waypoints = append(waypoints, from.Pos)
	waypoints = append(waypoints, extraWaypoints...)

	if origin := m.topo.AS(dst.Origin); origin != nil && origin.TransPacific &&
		geo.PoPRegion(from.Region) != geo.RegionNA {
		waypoints = append(waypoints, m.USWest.Pos)
	}
	if dst.Country == "RU" && (geo.PoPRegion(from.Region) == geo.RegionAP || from.Region == geo.RegionOC) {
		waypoints = append(waypoints, m.EUHub.Pos)
	}
	waypoints = append(waypoints, dst.Loc)

	var km float64
	for i := 1; i < len(waypoints); i++ {
		km += geo.DistanceKm(waypoints[i-1], waypoints[i])
	}
	rtt := km / geo.KmPerMsRTT * regionStretch(from.Region, dst.Region)
	rtt += float64(asHops) * m.PerHopMs
	// Residual noise: deterministic per (vantage, destination) pair so a
	// probe's min-RTT is stable across rounds, as min-of-5 pings is.
	noise := m.pairRNG(from, dst).Float64() * 6
	return rtt + noise
}

func (m *DelayModel) pairRNG(from geo.Place, dst *PrefixInfo) *loss.RNG {
	h := uint64(14695981039346656037)
	for _, c := range []byte(from.Name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	addr := dst.Prefix.Addr().As4()
	for _, c := range addr {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return m.rng.Fork(h)
}
