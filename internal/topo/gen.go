package topo

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"vns/internal/geo"
	"vns/internal/loss"
)

// GenConfig controls the synthetic Internet generator.
type GenConfig struct {
	// Seed drives all randomness; equal configs generate equal
	// topologies.
	Seed uint64
	// NumAS is the total number of ASes (default 4000).
	NumAS int
	// NumLTP is the number of tier-1-like transit providers forming the
	// fully meshed core (default 12, the historical tier-1 clique size).
	NumLTP int
	// FracSTP and FracCAHP are the fractions of NumAS that are small
	// transit providers and content/access/hosting providers; the
	// remainder (minus LTPs) are enterprise stubs. Defaults 0.10/0.22.
	FracSTP, FracCAHP float64
	// TransPacificFrac is the fraction of AP-region ASes that haul
	// traffic over their own trans-Pacific capacity to the US (default
	// 0.15, calibrated to reproduce Figure 3's AP displacement tail).
	TransPacificFrac float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.NumAS == 0 {
		c.NumAS = 4000
	}
	if c.NumLTP == 0 {
		c.NumLTP = 12
	}
	if c.FracSTP == 0 {
		c.FracSTP = 0.10
	}
	if c.FracCAHP == 0 {
		c.FracCAHP = 0.22
	}
	if c.TransPacificFrac == 0 {
		c.TransPacificFrac = 0.15
	}
	return c
}

// regionWeights is the share of ASes homed in each region, loosely
// following registry allocation shares of the paper's era.
var regionWeights = []struct {
	region geo.Region
	weight float64
}{
	{geo.RegionEU, 0.34},
	{geo.RegionNA, 0.29},
	{geo.RegionAP, 0.21},
	{geo.RegionOC, 0.04},
	{geo.RegionSA, 0.05},
	{geo.RegionME, 0.04},
	{geo.RegionAF, 0.03},
}

// firstASN is the lowest generated ASN; low numbers are left free for
// the VNS AS and test fixtures.
const firstASN = 100

// prefixBase is the first address of the synthetic allocation space;
// prefixes are sequential /20s from here.
var prefixBase = netip.MustParseAddr("1.0.0.0")

// PrefixAt returns the i-th /20 of the synthetic allocation space.
func PrefixAt(i int) netip.Prefix {
	base := binary.BigEndian.Uint32(prefixBase.AsSlice())
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], base+uint32(i)<<12)
	return netip.PrefixFrom(netip.AddrFrom4(b), 20)
}

// Generate builds a synthetic Internet. The resulting topology is
// connected (every AS reaches the LTP core through provider links) and
// valley-free routable.
func Generate(cfg GenConfig) *Topology {
	cfg = cfg.withDefaults()
	rng := loss.NewRNG(cfg.Seed)

	t := &Topology{
		ASes:         make(map[uint16]*AS),
		prefixByAddr: make(map[netip.Prefix]*PrefixInfo),
	}

	numSTP := int(float64(cfg.NumAS) * cfg.FracSTP)
	numCAHP := int(float64(cfg.NumAS) * cfg.FracCAHP)
	numEC := cfg.NumAS - cfg.NumLTP - numSTP - numCAHP
	if numEC < 0 {
		panic(fmt.Sprintf("topo: NumAS=%d too small for %d LTPs", cfg.NumAS, cfg.NumLTP))
	}

	asn := uint16(firstASN)
	newAS := func(typ ASType) *AS {
		a := &AS{ASN: asn, Type: typ}
		t.ASes[asn] = a
		t.asns = append(t.asns, asn)
		asn++
		return a
	}

	// Pass 1: create ASes with regions and sites.
	var ltps, stps, cahps, ecs []*AS
	for i := 0; i < cfg.NumLTP; i++ {
		a := newAS(LTP)
		a.Region = pickRegion(rng)
		a.Home = pickPlace(rng, a.Region)
		a.Sites = globalSites(rng, a.Home)
		ltps = append(ltps, a)
	}
	for i := 0; i < numSTP; i++ {
		a := newAS(STP)
		a.Region = pickRegion(rng)
		a.Home = pickPlace(rng, a.Region)
		a.Sites = regionalSites(rng, a.Region, a.Home, 1+rng.Intn(3))
		stps = append(stps, a)
	}
	for i := 0; i < numCAHP; i++ {
		a := newAS(CAHP)
		a.Region = pickRegion(rng)
		a.Home = pickPlace(rng, a.Region)
		a.Sites = regionalSites(rng, a.Region, a.Home, 1+rng.Intn(2))
		cahps = append(cahps, a)
	}
	for i := 0; i < numEC; i++ {
		a := newAS(EC)
		a.Region = pickRegion(rng)
		a.Home = pickPlace(rng, a.Region)
		a.Sites = []geo.Place{a.Home}
		ecs = append(ecs, a)
	}

	// Pass 2: relationships.
	// LTP core: full peer mesh.
	for i, a := range ltps {
		for _, b := range ltps[i+1:] {
			addPeer(a, b)
		}
	}
	stpsByRegion := groupByRegion(stps)
	cahpsByRegion := groupByRegion(cahps)

	// STPs buy transit from 1-3 LTPs and peer with 2-6 regional STPs.
	for _, a := range stps {
		for _, p := range pickDistinct(rng, ltps, 1+rng.Intn(3)) {
			addProviderCustomer(p, a)
		}
		local := stpsByRegion[a.Region]
		for _, p := range pickDistinct(rng, local, minInt(2+rng.Intn(5), len(local)-1)) {
			if p != a && !related(a, p) {
				addPeer(a, p)
			}
		}
	}

	// CAHPs buy from regional STPs (or an LTP when the region has no
	// STP) and peer lightly at regional IXPs.
	for _, a := range cahps {
		providers := providerPool(rng, stpsByRegion[a.Region], ltps)
		for _, p := range pickDistinct(rng, providers, 1+rng.Intn(3)) {
			if !related(a, p) {
				addProviderCustomer(p, a)
			}
		}
		local := cahpsByRegion[a.Region]
		for _, p := range pickDistinct(rng, local, rng.Intn(3)) {
			if p != a && !related(a, p) {
				addPeer(a, p)
			}
		}
	}

	// ECs buy from 1-2 regional transit networks (STP or CAHP).
	for _, a := range ecs {
		pool := make([]*AS, 0, 8)
		pool = append(pool, stpsByRegion[a.Region]...)
		pool = append(pool, cahpsByRegion[a.Region]...)
		if len(pool) == 0 {
			pool = ltps
		}
		for _, p := range pickDistinct(rng, pool, 1+rng.Intn(2)) {
			if !related(a, p) {
				addProviderCustomer(p, a)
			}
		}
	}

	// Pass 3: trans-Pacific flag for AP ASes. Iterate in ASN order, not
	// map order: the draw count is fixed either way, but map order would
	// randomize which ASes the draws land on.
	for _, n := range t.asns {
		a := t.ASes[n]
		if a.Region == geo.RegionAP && a.Type != LTP && rng.Bool(cfg.TransPacificFrac) {
			a.TransPacific = true
		}
	}

	// Pass 4: prefixes with ground-truth locations.
	idx := 0
	for _, n := range t.asns {
		a := t.ASes[n]
		count := prefixCount(rng, a.Type)
		for i := 0; i < count; i++ {
			site := a.Sites[rng.Intn(len(a.Sites))]
			p := PrefixAt(idx)
			idx++
			pi := PrefixInfo{
				Prefix:  p,
				Origin:  a.ASN,
				Loc:     jitterNear(rng, site.Pos, 30),
				Country: site.Country,
				Region:  site.Region,
			}
			a.Prefixes = append(a.Prefixes, p)
			t.Prefixes = append(t.Prefixes, pi)
		}
	}
	for i := range t.Prefixes {
		t.prefixByAddr[t.Prefixes[i].Prefix] = &t.Prefixes[i]
	}
	return t
}

func prefixCount(rng *loss.RNG, typ ASType) int {
	switch typ {
	case LTP:
		return 4 + rng.Intn(5)
	case STP:
		return 2 + rng.Intn(5)
	case CAHP:
		return 3 + rng.Intn(6)
	default:
		return 1 + rng.Intn(2)
	}
}

func pickRegion(rng *loss.RNG) geo.Region {
	x := rng.Float64()
	for _, rw := range regionWeights {
		if x < rw.weight {
			return rw.region
		}
		x -= rw.weight
	}
	return geo.RegionEU
}

func pickPlace(rng *loss.RNG, r geo.Region) geo.Place {
	ps := geo.PlacesInRegion(r)
	return ps[rng.Intn(len(ps))]
}

// globalSites returns a tier-1-like site set: the home plus cities in
// most regions.
func globalSites(rng *loss.RNG, home geo.Place) []geo.Place {
	sites := []geo.Place{home}
	for _, r := range geo.Regions() {
		if rng.Bool(0.8) {
			p := pickPlace(rng, r)
			if p.Name != home.Name {
				sites = append(sites, p)
			}
		}
	}
	return sites
}

func regionalSites(rng *loss.RNG, r geo.Region, home geo.Place, n int) []geo.Place {
	sites := []geo.Place{home}
	ps := geo.PlacesInRegion(r)
	for i := 1; i < n; i++ {
		p := ps[rng.Intn(len(ps))]
		dup := false
		for _, s := range sites {
			if s.Name == p.Name {
				dup = true
				break
			}
		}
		if !dup {
			sites = append(sites, p)
		}
	}
	return sites
}

func groupByRegion(as []*AS) map[geo.Region][]*AS {
	m := make(map[geo.Region][]*AS)
	for _, a := range as {
		m[a.Region] = append(m[a.Region], a)
	}
	return m
}

func providerPool(rng *loss.RNG, regional []*AS, ltps []*AS) []*AS {
	if len(regional) == 0 {
		return ltps
	}
	// Mostly regional transit with occasional direct LTP transit.
	pool := append([]*AS{}, regional...)
	pool = append(pool, ltps[rng.Intn(len(ltps))])
	return pool
}

func pickDistinct(rng *loss.RNG, pool []*AS, n int) []*AS {
	if n <= 0 || len(pool) == 0 {
		return nil
	}
	if n >= len(pool) {
		out := make([]*AS, len(pool))
		copy(out, pool)
		return out
	}
	// Partial Fisher-Yates over a copy of indices.
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	out := make([]*AS, 0, n)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, pool[idx[i]])
	}
	return out
}

func addPeer(a, b *AS) {
	a.Peers = append(a.Peers, b.ASN)
	b.Peers = append(b.Peers, a.ASN)
}

func addProviderCustomer(provider, customer *AS) {
	provider.Customers = append(provider.Customers, customer.ASN)
	customer.Providers = append(customer.Providers, provider.ASN)
}

// related reports whether a and b already have any relationship.
func related(a, b *AS) bool {
	for _, n := range a.Neighbors() {
		if n.ASN == b.ASN {
			return true
		}
	}
	return false
}

func jitterNear(rng *loss.RNG, pos geo.LatLon, km float64) geo.LatLon {
	const kmPerDeg = 111.0
	out := geo.LatLon{
		Lat: pos.Lat + rng.NormFloat64()*km/kmPerDeg,
		Lon: pos.Lon + rng.NormFloat64()*km/kmPerDeg,
	}
	if out.Lat > 90 {
		out.Lat = 90
	}
	if out.Lat < -90 {
		out.Lat = -90
	}
	for out.Lon > 180 {
		out.Lon -= 360
	}
	for out.Lon < -180 {
		out.Lon += 360
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
