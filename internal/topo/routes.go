package topo

import "math"

// RouteClass classifies a route by the first link it takes from its
// holder, which is what Gao–Rexford export policy keys on.
type RouteClass uint8

const (
	// ClassCustomer: learned from a customer (most preferred, exportable
	// to everyone).
	ClassCustomer RouteClass = iota
	// ClassPeer: learned from a settlement-free peer (exportable only to
	// customers).
	ClassPeer
	// ClassProvider: learned from a transit provider (least preferred,
	// exportable only to customers).
	ClassProvider
	// ClassNone: no valley-free route exists.
	ClassNone
)

func (c RouteClass) String() string {
	switch c {
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	default:
		return "none"
	}
}

const infHops = math.MaxUint16

// Walk states of the valley-free BFS: customer-route going down;
// peer-route going down; provider-route still climbing; provider-route
// going down.
const (
	stCustDown = iota
	stPeerDown
	stProvUp
	stProvDown
	numStates
)

// RouteView holds, for a fixed source AS, the best valley-free route to
// every destination AS, per route class. Build it with RoutesFrom.
type RouteView struct {
	src  uint16
	topo *Topology
	// Per-class hop counts to each dense AS index; infHops = unreachable
	// in that class.
	cust, peer, prov []uint16
	index            map[uint16]int
	// parent[state][idx] encodes the BFS predecessor as state*n+idx,
	// or -1 at a first hop from the source; it backs PathTo.
	parent [][]int32
	// provState[idx] records which provider-walk state won prov[idx].
	provState []uint8
}

// RoutesFrom computes valley-free routes from src to every AS with a
// breadth-first search over the (AS, policy-state) product graph:
// valley-free paths have the shape up* peer? down*, and the class of the
// route at src is its first edge's type. Complexity O(V + E).
func (t *Topology) RoutesFrom(src uint16) *RouteView {
	n := len(t.asns)
	index := make(map[uint16]int, n)
	for i, asn := range t.asns {
		index[asn] = i
	}
	v := &RouteView{
		src:   src,
		topo:  t,
		cust:  filled(n, infHops),
		peer:  filled(n, infHops),
		prov:  filled(n, infHops),
		index: index,
	}

	dist := make([][]uint16, numStates)
	for i := range dist {
		dist[i] = filled(n, infHops)
	}
	parent := make([][]int32, numStates)
	for i := range parent {
		parent[i] = make([]int32, n)
		for j := range parent[i] {
			parent[i][j] = -2 // unvisited
		}
	}
	type node struct {
		state int
		idx   int
	}
	var queue []node
	push := func(state, idx int, d uint16, from int32) {
		if dist[state][idx] != infHops {
			return
		}
		dist[state][idx] = d
		parent[state][idx] = from
		queue = append(queue, node{state, idx})
	}
	enc := func(state, idx int) int32 { return int32(state*n + idx) }

	s := t.ASes[src]
	if s == nil {
		return v
	}
	for _, c := range s.Customers {
		push(stCustDown, index[c], 1, -1)
	}
	for _, p := range s.Peers {
		push(stPeerDown, index[p], 1, -1)
	}
	for _, p := range s.Providers {
		push(stProvUp, index[p], 1, -1)
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := dist[cur.state][cur.idx] + 1
		from := enc(cur.state, cur.idx)
		a := t.ASes[t.asns[cur.idx]]
		switch cur.state {
		case stCustDown:
			for _, c := range a.Customers {
				push(stCustDown, index[c], d, from)
			}
		case stPeerDown:
			for _, c := range a.Customers {
				push(stPeerDown, index[c], d, from)
			}
		case stProvUp:
			for _, p := range a.Providers {
				push(stProvUp, index[p], d, from)
			}
			for _, p := range a.Peers {
				push(stProvDown, index[p], d, from)
			}
			for _, c := range a.Customers {
				push(stProvDown, index[c], d, from)
			}
		case stProvDown:
			for _, c := range a.Customers {
				push(stProvDown, index[c], d, from)
			}
		}
	}

	copy(v.cust, dist[stCustDown])
	copy(v.peer, dist[stPeerDown])
	v.provState = make([]uint8, n)
	for i := range v.prov {
		if dist[stProvUp][i] <= dist[stProvDown][i] {
			v.prov[i] = dist[stProvUp][i]
			v.provState[i] = stProvUp
		} else {
			v.prov[i] = dist[stProvDown][i]
			v.provState[i] = stProvDown
		}
	}
	v.parent = parent
	// The source reaches itself with an empty customer route.
	v.cust[index[src]] = 0
	return v
}

func filled(n int, v uint16) []uint16 {
	s := make([]uint16, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

// Src returns the source AS of this view.
func (v *RouteView) Src() uint16 { return v.src }

// Best returns the source's preferred route to dst under Gao–Rexford
// preference (customer > peer > provider, then fewest hops within the
// class). hops counts AS-level links; ok is false if unreachable.
func (v *RouteView) Best(dst uint16) (class RouteClass, hops int, ok bool) {
	i, found := v.index[dst]
	if !found {
		return ClassNone, 0, false
	}
	switch {
	case v.cust[i] != infHops:
		return ClassCustomer, int(v.cust[i]), true
	case v.peer[i] != infHops:
		return ClassPeer, int(v.peer[i]), true
	case v.prov[i] != infHops:
		return ClassProvider, int(v.prov[i]), true
	default:
		return ClassNone, 0, false
	}
}

// CustomerRoute returns the hop count of the source's customer route to
// dst, ok=false if dst is outside the source's customer cone.
func (v *RouteView) CustomerRoute(dst uint16) (hops int, ok bool) {
	i, found := v.index[dst]
	if !found || v.cust[i] == infHops {
		return 0, false
	}
	return int(v.cust[i]), true
}

// ExportToCustomer returns the route the source AS would advertise to a
// customer (such as VNS buying transit): its best route of any class.
func (v *RouteView) ExportToCustomer(dst uint16) (hops int, ok bool) {
	_, h, ok := v.Best(dst)
	return h, ok
}

// ExportToPeer returns the route the source AS would advertise to a
// settlement-free peer (such as VNS peering at an IXP): only customer
// routes and its own prefixes are exported.
func (v *RouteView) ExportToPeer(dst uint16) (hops int, ok bool) {
	return v.CustomerRoute(dst)
}

// InCustomerCone reports whether dst sits in the source's customer cone.
func (v *RouteView) InCustomerCone(dst uint16) bool {
	_, ok := v.CustomerRoute(dst)
	return ok
}

// CustomerConeSize returns the number of ASes in asn's customer cone
// (itself included): the networks it can deliver to over customer links
// alone, and hence what it can export to a settlement-free peer.
func (t *Topology) CustomerConeSize(asn uint16) int {
	a := t.ASes[asn]
	if a == nil {
		return 0
	}
	seen := map[uint16]bool{asn: true}
	queue := []uint16{asn}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range t.ASes[cur].Customers {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return len(seen)
}

// PathTo reconstructs the AS-level path of the source's best route to
// dst, from the source's first hop to dst inclusive (empty for
// dst == src). ok is false when dst is unreachable.
func (v *RouteView) PathTo(dst uint16) (path []uint16, ok bool) {
	i, found := v.index[dst]
	if !found {
		return nil, false
	}
	if dst == v.src {
		return nil, true
	}
	n := len(v.topo.asns)
	var state int
	switch {
	case v.cust[i] != infHops:
		state = stCustDown
	case v.peer[i] != infHops:
		state = stPeerDown
	case v.prov[i] != infHops:
		state = int(v.provState[i])
	default:
		return nil, false
	}
	cur := int32(state*n + i)
	for cur >= 0 {
		s, idx := int(cur)/n, int(cur)%n
		path = append(path, v.topo.asns[idx])
		cur = v.parent[s][idx]
		if cur == -2 {
			return nil, false // inconsistent parents; unreachable state
		}
	}
	// Reverse into first-hop-first order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path, true
}
