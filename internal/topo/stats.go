package topo

import (
	"fmt"
	"sort"
	"strings"

	"vns/internal/geo"
)

// Stats summarizes a generated topology, for sanity checks and the
// daemon's startup banner.
type Stats struct {
	ASes     int
	Links    int
	Prefixes int
	// ByType counts ASes per business type.
	ByType map[ASType]int
	// ByRegion counts ASes per home region.
	ByRegion map[geo.Region]int
	// MaxConeSize is the largest customer cone (an LTP's).
	MaxConeSize int
	// MeanDegree is the average number of neighbors per AS.
	MeanDegree float64
	// TransPacific counts AP ASes with own trans-Pacific transit.
	TransPacific int
}

// ComputeStats walks the topology once.
func (t *Topology) ComputeStats() Stats {
	s := Stats{
		ASes:     len(t.asns),
		Links:    t.NumLinks(),
		Prefixes: len(t.Prefixes),
		ByType:   make(map[ASType]int),
		ByRegion: make(map[geo.Region]int),
	}
	degreeSum := 0
	for _, asn := range t.asns {
		a := t.ASes[asn]
		s.ByType[a.Type]++
		s.ByRegion[a.Region]++
		degreeSum += len(a.Providers) + len(a.Customers) + len(a.Peers)
		if a.TransPacific {
			s.TransPacific++
		}
		if a.Type == LTP {
			if c := t.CustomerConeSize(asn); c > s.MaxConeSize {
				s.MaxConeSize = c
			}
		}
	}
	if s.ASes > 0 {
		s.MeanDegree = float64(degreeSum) / float64(s.ASes)
	}
	return s
}

func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d ASes, %d links (mean degree %.1f), %d prefixes\n",
		s.ASes, s.Links, s.MeanDegree, s.Prefixes)
	var types []string
	for _, typ := range ASTypes() {
		types = append(types, fmt.Sprintf("%v=%d", typ, s.ByType[typ]))
	}
	fmt.Fprintf(&b, "types: %s\n", strings.Join(types, " "))
	var regions []string
	for _, r := range geo.Regions() {
		if s.ByRegion[r] > 0 {
			regions = append(regions, fmt.Sprintf("%v=%d", r, s.ByRegion[r]))
		}
	}
	sort.Strings(regions)
	fmt.Fprintf(&b, "regions: %s\n", strings.Join(regions, " "))
	fmt.Fprintf(&b, "largest customer cone: %d ASes; trans-Pacific AP ASes: %d",
		s.MaxConeSize, s.TransPacific)
	return b.String()
}
