package topo

import (
	"testing"

	"vns/internal/geo"
)

func smallTopo(t *testing.T) *Topology {
	t.Helper()
	return Generate(GenConfig{Seed: 1, NumAS: 600, NumLTP: 8})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Seed: 7, NumAS: 300})
	b := Generate(GenConfig{Seed: 7, NumAS: 300})
	if len(a.ASNs()) != len(b.ASNs()) {
		t.Fatal("different AS counts for same seed")
	}
	for _, asn := range a.ASNs() {
		x, y := a.AS(asn), b.AS(asn)
		if x.Type != y.Type || x.Region != y.Region || x.Home.Name != y.Home.Name {
			t.Fatalf("AS%d differs between runs", asn)
		}
		if len(x.Prefixes) != len(y.Prefixes) {
			t.Fatalf("AS%d prefix counts differ", asn)
		}
	}
	c := Generate(GenConfig{Seed: 8, NumAS: 300})
	diff := false
	for _, asn := range a.ASNs() {
		if a.AS(asn).Home.Name != c.AS(asn).Home.Name {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical topologies")
	}
}

func TestGenerateCounts(t *testing.T) {
	tp := smallTopo(t)
	counts := map[ASType]int{}
	for _, asn := range tp.ASNs() {
		counts[tp.AS(asn).Type]++
	}
	if counts[LTP] != 8 {
		t.Errorf("LTP count = %d, want 8", counts[LTP])
	}
	if counts[STP] == 0 || counts[CAHP] == 0 || counts[EC] == 0 {
		t.Errorf("missing AS types: %v", counts)
	}
	if counts[EC] < counts[STP] {
		t.Errorf("ECs (%d) should outnumber STPs (%d)", counts[EC], counts[STP])
	}
	total := counts[LTP] + counts[STP] + counts[CAHP] + counts[EC]
	if total != 600 {
		t.Errorf("total = %d, want 600", total)
	}
}

func TestGenerateRelationshipInvariants(t *testing.T) {
	tp := smallTopo(t)
	for _, asn := range tp.ASNs() {
		a := tp.AS(asn)
		seen := map[uint16]Rel{}
		for _, n := range a.Neighbors() {
			if n.ASN == asn {
				t.Fatalf("AS%d has a self-link", asn)
			}
			if prev, dup := seen[n.ASN]; dup {
				t.Fatalf("AS%d has duplicate relationship to AS%d (%v and %v)", asn, n.ASN, prev, n.Rel)
			}
			seen[n.ASN] = n.Rel
			// Symmetry: the neighbor must hold the inverse relationship.
			b := tp.AS(n.ASN)
			if b == nil {
				t.Fatalf("AS%d links to unknown AS%d", asn, n.ASN)
			}
			var want Rel
			switch n.Rel {
			case RelProvider:
				want = RelCustomer
			case RelCustomer:
				want = RelProvider
			case RelPeer:
				want = RelPeer
			}
			found := false
			for _, m := range b.Neighbors() {
				if m.ASN == asn && m.Rel == want {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("AS%d sees AS%d as %v but inverse edge missing", asn, n.ASN, n.Rel)
			}
		}
	}
}

func TestGenerateEveryNonLTPHasProvider(t *testing.T) {
	tp := smallTopo(t)
	for _, asn := range tp.ASNs() {
		a := tp.AS(asn)
		if a.Type != LTP && len(a.Providers) == 0 {
			t.Errorf("AS%d (%v) has no provider", asn, a.Type)
		}
		if a.Type == LTP && len(a.Providers) != 0 {
			t.Errorf("LTP AS%d has a provider", asn)
		}
	}
}

func TestGenerateLTPMesh(t *testing.T) {
	tp := smallTopo(t)
	var ltps []*AS
	for _, asn := range tp.ASNs() {
		if a := tp.AS(asn); a.Type == LTP {
			ltps = append(ltps, a)
		}
	}
	for i, a := range ltps {
		for j, b := range ltps {
			if i == j {
				continue
			}
			found := false
			for _, p := range a.Peers {
				if p == b.ASN {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("LTP AS%d and AS%d not peered", a.ASN, b.ASN)
			}
		}
	}
}

func TestGeneratePrefixes(t *testing.T) {
	tp := smallTopo(t)
	if len(tp.Prefixes) < 600 {
		t.Fatalf("only %d prefixes", len(tp.Prefixes))
	}
	seen := map[string]bool{}
	for _, pi := range tp.Prefixes {
		s := pi.Prefix.String()
		if seen[s] {
			t.Fatalf("duplicate prefix %s", s)
		}
		seen[s] = true
		if !pi.Loc.Valid() {
			t.Errorf("prefix %s has invalid location", s)
		}
		a := tp.AS(pi.Origin)
		if a == nil {
			t.Fatalf("prefix %s has unknown origin", s)
		}
		got, ok := tp.PrefixInfoFor(pi.Prefix)
		if !ok || got.Origin != pi.Origin {
			t.Errorf("PrefixInfoFor(%s) mismatch", s)
		}
	}
}

func TestPrefixAt(t *testing.T) {
	p0 := PrefixAt(0)
	if p0.String() != "1.0.0.0/20" {
		t.Errorf("PrefixAt(0) = %v", p0)
	}
	p1 := PrefixAt(1)
	if p1.String() != "1.0.16.0/20" {
		t.Errorf("PrefixAt(1) = %v", p1)
	}
	if PrefixAt(256).String() != "1.16.0.0/20" {
		t.Errorf("PrefixAt(256) = %v", PrefixAt(256))
	}
	if PrefixAt(4096).String() != "2.0.0.0/20" {
		t.Errorf("PrefixAt(4096) = %v", PrefixAt(4096))
	}
}

func TestRoutesFromReachesEverything(t *testing.T) {
	tp := smallTopo(t)
	// From an LTP, everything must be reachable (it has the full
	// customer cone of the Internet below it plus the peer mesh).
	var ltp *AS
	for _, asn := range tp.ASNs() {
		if tp.AS(asn).Type == LTP {
			ltp = tp.AS(asn)
			break
		}
	}
	v := tp.RoutesFrom(ltp.ASN)
	for _, asn := range tp.ASNs() {
		if _, _, ok := v.Best(asn); !ok {
			t.Fatalf("AS%d unreachable from LTP AS%d", asn, ltp.ASN)
		}
	}
	// Self route: customer class, 0 hops.
	class, hops, ok := v.Best(ltp.ASN)
	if !ok || class != ClassCustomer || hops != 0 {
		t.Errorf("self route = %v %d %v", class, hops, ok)
	}
}

func TestRoutesFromStubSeesProviderRoutes(t *testing.T) {
	tp := smallTopo(t)
	var ec *AS
	for _, asn := range tp.ASNs() {
		if tp.AS(asn).Type == EC {
			ec = tp.AS(asn)
			break
		}
	}
	v := tp.RoutesFrom(ec.ASN)
	reached, custOrPeer := 0, 0
	for _, asn := range tp.ASNs() {
		class, _, ok := v.Best(asn)
		if !ok {
			t.Fatalf("AS%d unreachable from stub AS%d", asn, ec.ASN)
		}
		reached++
		if class != ClassProvider && asn != ec.ASN {
			custOrPeer++
		}
	}
	// A stub reaches almost everything via its providers.
	if custOrPeer > reached/2 {
		t.Errorf("stub has %d/%d non-provider routes, expected mostly provider routes", custOrPeer, reached)
	}
}

func TestValleyFreePreference(t *testing.T) {
	tp := smallTopo(t)
	// For every AS with both a customer route and any other class to
	// some destination, Best must return the customer route even if it
	// is longer — verify class ordering on a sample.
	v := tp.RoutesFrom(tp.ASNs()[0])
	for _, dst := range tp.ASNs() {
		class, hops, ok := v.Best(dst)
		if !ok {
			continue
		}
		if ch, cok := v.CustomerRoute(dst); cok {
			if class != ClassCustomer || hops != ch {
				t.Fatalf("dst AS%d: Best=(%v,%d) but customer route %d exists", dst, class, hops, ch)
			}
		}
	}
}

func TestExportRules(t *testing.T) {
	tp := smallTopo(t)
	var ltp *AS
	for _, asn := range tp.ASNs() {
		if tp.AS(asn).Type == LTP {
			ltp = tp.AS(asn)
			break
		}
	}
	v := tp.RoutesFrom(ltp.ASN)
	toCustomer, toPeer := 0, 0
	for _, dst := range tp.ASNs() {
		if _, ok := v.ExportToCustomer(dst); ok {
			toCustomer++
		}
		if _, ok := v.ExportToPeer(dst); ok {
			toPeer++
		}
	}
	if toCustomer != len(tp.ASNs()) {
		t.Errorf("LTP exports %d/%d to customers, want all", toCustomer, len(tp.ASNs()))
	}
	// Peers see only the customer cone, which excludes at least the
	// other LTPs and their exclusive cones.
	if toPeer >= toCustomer {
		t.Errorf("peer export (%d) should be smaller than customer export (%d)", toPeer, toCustomer)
	}
	if toPeer == 0 {
		t.Error("LTP customer cone empty")
	}
}

func TestInCustomerCone(t *testing.T) {
	tp := smallTopo(t)
	// Any EC is in its provider's customer cone.
	for _, asn := range tp.ASNs() {
		a := tp.AS(asn)
		if a.Type != EC || len(a.Providers) == 0 {
			continue
		}
		v := tp.RoutesFrom(a.Providers[0])
		if !v.InCustomerCone(asn) {
			t.Fatalf("EC AS%d not in provider AS%d cone", asn, a.Providers[0])
		}
		break
	}
}

func TestRouteViewUnknownASN(t *testing.T) {
	tp := smallTopo(t)
	v := tp.RoutesFrom(tp.ASNs()[0])
	if _, _, ok := v.Best(65000); ok {
		t.Error("unknown ASN should be unreachable")
	}
	if v.Src() != tp.ASNs()[0] {
		t.Error("Src wrong")
	}
}

func TestRoutesFromUnknownSource(t *testing.T) {
	tp := smallTopo(t)
	v := tp.RoutesFrom(65000)
	reached := 0
	for _, asn := range tp.ASNs() {
		if _, _, ok := v.Best(asn); ok {
			reached++
		}
	}
	if reached != 0 {
		t.Errorf("unknown source reaches %d ASes", reached)
	}
}

func TestDelayModelBasics(t *testing.T) {
	tp := smallTopo(t)
	m := NewDelayModel(tp, 42)
	ams := geo.MustLookup("Amsterdam")
	// A prefix near Frankfurt.
	pi := &PrefixInfo{Prefix: PrefixAt(99990), Loc: geo.MustLookup("Frankfurt").Pos, Country: "DE", Region: geo.RegionEU}
	rtt := m.RTT(ams, pi, 3)
	if rtt < 3 || rtt > 30 {
		t.Errorf("AMS->FRA RTT = %.1f ms, want single-digit-ish", rtt)
	}
	// Deterministic.
	if rtt2 := m.RTT(ams, pi, 3); rtt2 != rtt {
		t.Errorf("RTT not deterministic: %v vs %v", rtt, rtt2)
	}
	// More hops cost more.
	if m.RTT(ams, pi, 10) <= rtt {
		t.Error("more AS hops should increase RTT")
	}
}

func TestDelayModelDistanceMonotone(t *testing.T) {
	tp := smallTopo(t)
	m := NewDelayModel(tp, 42)
	ams := geo.MustLookup("Amsterdam")
	near := &PrefixInfo{Prefix: PrefixAt(99991), Loc: geo.MustLookup("Paris").Pos, Country: "FR", Region: geo.RegionEU}
	far := &PrefixInfo{Prefix: PrefixAt(99992), Loc: geo.MustLookup("Tokyo").Pos, Country: "JP", Region: geo.RegionAP}
	if m.RTT(ams, near, 3) >= m.RTT(ams, far, 3) {
		t.Error("nearer destination should have lower RTT")
	}
}

func TestDelayModelTransPacific(t *testing.T) {
	tp := smallTopo(t)
	m := NewDelayModel(tp, 42)
	// Find a trans-Pacific AP AS with a prefix.
	var pi *PrefixInfo
	for i := range tp.Prefixes {
		p := &tp.Prefixes[i]
		if a := tp.AS(p.Origin); a.TransPacific && len(a.Prefixes) > 0 && p.Region == geo.RegionAP {
			pi = p
			break
		}
	}
	if pi == nil {
		t.Skip("no trans-Pacific prefix in sample")
	}
	ams := geo.MustLookup("Amsterdam")
	sjc := geo.MustLookup("SanJose")
	hk := geo.MustLookup("HongKong")
	fromEU := m.RTT(ams, pi, 4)
	fromNA := m.RTT(sjc, pi, 4)
	fromAP := m.RTT(hk, pi, 4)
	// The structural claim behind Figure 3's AP tail: for trans-Pacific
	// ASes, a US vantage can be delay-closer than the geography
	// suggests; an EU vantage pays the US detour on top of everything.
	if fromNA >= fromEU {
		t.Errorf("trans-Pacific prefix: NA vantage (%.0f) should beat EU (%.0f)", fromNA, fromEU)
	}
	_ = fromAP
}

func TestDelayModelRussiaHairpin(t *testing.T) {
	tp := smallTopo(t)
	m := NewDelayModel(tp, 42)
	moscow := &PrefixInfo{Prefix: PrefixAt(99993), Loc: geo.MustLookup("Moscow").Pos, Country: "RU", Region: geo.RegionEU}
	sin := geo.MustLookup("Singapore")
	direct := geo.DistanceKm(sin.Pos, moscow.Loc) / geo.KmPerMsRTT
	got := m.RTT(sin, moscow, 4)
	// The hairpin through the EU hub must stretch the path well beyond
	// any plain region-pair stretch of the direct geodesic.
	if got < direct*1.8 {
		t.Errorf("SIN->RU RTT %.0f ms does not reflect hairpin (direct %.0f ms)", got, direct)
	}
}

func TestASTypeAndRelStrings(t *testing.T) {
	if LTP.String() != "LTP" || EC.String() != "EC" {
		t.Error("AS type names")
	}
	if ASType(9).String() != "AS?" {
		t.Error("unknown AS type name")
	}
	if RelPeer.String() != "peer" || RelCustomer.String() != "customer" || RelProvider.String() != "provider" {
		t.Error("rel names")
	}
	if Rel(9).String() != "rel?" {
		t.Error("unknown rel name")
	}
	if ClassCustomer.String() != "customer" || ClassNone.String() != "none" {
		t.Error("class names")
	}
}

func TestNumLinksPositive(t *testing.T) {
	tp := smallTopo(t)
	if tp.NumLinks() <= 0 {
		t.Error("no links")
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(GenConfig{Seed: uint64(i), NumAS: 1000})
	}
}

func BenchmarkRoutesFrom(b *testing.B) {
	tp := Generate(GenConfig{Seed: 1, NumAS: 2000})
	asns := tp.ASNs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.RoutesFrom(asns[i%len(asns)])
	}
}

func TestPathToMatchesBest(t *testing.T) {
	tp := smallTopo(t)
	src := tp.ASNs()[0]
	v := tp.RoutesFrom(src)
	checked := 0
	for _, dst := range tp.ASNs() {
		class, hops, ok := v.Best(dst)
		path, pok := v.PathTo(dst)
		if ok != pok {
			t.Fatalf("dst %d: Best ok=%v PathTo ok=%v", dst, ok, pok)
		}
		if !ok {
			continue
		}
		if dst == src {
			if len(path) != 0 {
				t.Fatalf("self path = %v", path)
			}
			continue
		}
		if len(path) != hops {
			t.Fatalf("dst %d: path len %d != hops %d (class %v)", dst, len(path), hops, class)
		}
		if path[len(path)-1] != dst {
			t.Fatalf("dst %d: path ends at %d", dst, path[len(path)-1])
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d paths checked", checked)
	}
}

func TestPathToIsValleyFree(t *testing.T) {
	tp := smallTopo(t)
	src := tp.ASNs()[3]
	v := tp.RoutesFrom(src)
	rel := func(a, b uint16) Rel {
		for _, nb := range tp.AS(a).Neighbors() {
			if nb.ASN == b {
				return nb.Rel
			}
		}
		t.Fatalf("no relationship %d-%d", a, b)
		return 0
	}
	for _, dst := range tp.ASNs() {
		path, ok := v.PathTo(dst)
		if !ok || len(path) == 0 {
			continue
		}
		// Walk the relationships along src -> path[0] -> ... -> dst and
		// check the up* peer? down* shape.
		full := append([]uint16{src}, path...)
		phase := 0 // 0=up, 1=after peer, 2=down
		for i := 1; i < len(full); i++ {
			r := rel(full[i-1], full[i])
			switch r {
			case RelProvider: // going up
				if phase != 0 {
					t.Fatalf("valley in path %v at hop %d", full, i)
				}
			case RelPeer:
				if phase != 0 {
					t.Fatalf("second peer/late peer in path %v at hop %d", full, i)
				}
				phase = 1
			case RelCustomer: // going down
				phase = 2
			}
			if phase == 2 && i < len(full)-1 {
				// After turning down, only customer edges may follow.
				next := rel(full[i], full[i+1])
				if next != RelCustomer {
					t.Fatalf("path %v climbs after descending at hop %d", full, i)
				}
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	tp := smallTopo(t)
	s := tp.ComputeStats()
	if s.ASes != 600 || s.Prefixes != len(tp.Prefixes) {
		t.Errorf("counts: %+v", s)
	}
	if s.ByType[LTP] != 8 {
		t.Errorf("LTPs = %d", s.ByType[LTP])
	}
	if s.MeanDegree <= 1 {
		t.Errorf("mean degree = %v", s.MeanDegree)
	}
	// The largest cone belongs to an LTP and spans a big chunk of the
	// Internet.
	if s.MaxConeSize < s.ASes/10 {
		t.Errorf("max cone = %d of %d", s.MaxConeSize, s.ASes)
	}
	if s.TransPacific == 0 {
		t.Error("no trans-Pacific ASes")
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}
