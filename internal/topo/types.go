// Package topo builds and queries the synthetic Internet that stands in
// for the live one: an AS-level topology with business relationships
// (customer/provider/peer), AS types per the Dhamdhere–Dovrolis
// taxonomy the paper adopts (LTP, STP, CAHP, EC), multi-site geography,
// prefix origination with ground-truth locations, and Gao–Rexford
// (valley-free) policy routing.
//
// The generator is fully deterministic given a seed, so every experiment
// is reproducible. Scale is configurable: tests run a small Internet,
// benchmarks a larger one.
package topo

import (
	"net/netip"

	"vns/internal/geo"
)

// ASType is the business-type taxonomy from Dhamdhere & Dovrolis, "Ten
// years in the evolution of the Internet ecosystem" (IMC 2008), used by
// the paper's last-mile analysis.
type ASType uint8

const (
	// LTP is a Large Transit Provider (tier-1-like, global footprint).
	LTP ASType = iota
	// STP is a Small Transit Provider (regional transit).
	STP
	// CAHP is a Content/Access/Hosting Provider (serves residential
	// users and hosts content; the congested edge in the paper's data).
	CAHP
	// EC is an Enterprise Customer (stub network).
	EC
)

var asTypeNames = [...]string{"LTP", "STP", "CAHP", "EC"}

func (t ASType) String() string {
	if int(t) < len(asTypeNames) {
		return asTypeNames[t]
	}
	return "AS?"
}

// ASTypes lists all types in display order.
func ASTypes() []ASType { return []ASType{LTP, STP, CAHP, EC} }

// Rel is the business relationship of a link, viewed from one side.
type Rel uint8

const (
	// RelCustomer: the neighbor is my customer (I provide transit).
	RelCustomer Rel = iota
	// RelProvider: the neighbor is my provider (I buy transit).
	RelProvider
	// RelPeer: settlement-free peering.
	RelPeer
)

func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelProvider:
		return "provider"
	case RelPeer:
		return "peer"
	default:
		return "rel?"
	}
}

// AS is one autonomous system.
type AS struct {
	ASN    uint16
	Type   ASType
	Region geo.Region
	// Home is the AS's primary location; prefixes are sited near it.
	Home geo.Place
	// Sites are the cities where the AS has infrastructure. LTPs have
	// global site sets; stubs have just their home.
	Sites []geo.Place
	// Providers, Customers, Peers hold neighbor ASNs by relationship.
	Providers []uint16
	Customers []uint16
	Peers     []uint16
	// Prefixes originated by this AS.
	Prefixes []netip.Prefix
	// TransPacific marks AP-region ASes that haul their own traffic to
	// the US over trans-Pacific capacity, the cause the paper identifies
	// for AP prefixes being delay-closer to US PoPs.
	TransPacific bool
}

// Neighbors returns all neighbor ASNs with their relationship.
func (a *AS) Neighbors() []Neighbor {
	out := make([]Neighbor, 0, len(a.Providers)+len(a.Customers)+len(a.Peers))
	for _, n := range a.Providers {
		out = append(out, Neighbor{ASN: n, Rel: RelProvider})
	}
	for _, n := range a.Customers {
		out = append(out, Neighbor{ASN: n, Rel: RelCustomer})
	}
	for _, n := range a.Peers {
		out = append(out, Neighbor{ASN: n, Rel: RelPeer})
	}
	return out
}

// Neighbor pairs an ASN with the relationship toward it.
type Neighbor struct {
	ASN uint16
	Rel Rel
}

// PrefixInfo is the ground truth about one originated prefix.
type PrefixInfo struct {
	Prefix  netip.Prefix
	Origin  uint16 // originating ASN
	Loc     geo.LatLon
	Country string
	Region  geo.Region
}

// Topology is the generated Internet.
type Topology struct {
	// ASes maps ASN to the AS. Iteration must use ASNs() for
	// determinism.
	ASes map[uint16]*AS
	// Prefixes lists every originated prefix with ground truth, in
	// allocation order.
	Prefixes []PrefixInfo

	prefixByAddr map[netip.Prefix]*PrefixInfo
	asns         []uint16
}

// ASNs returns all ASNs in ascending order.
func (t *Topology) ASNs() []uint16 { return t.asns }

// AS returns the AS with the given number, or nil.
func (t *Topology) AS(asn uint16) *AS { return t.ASes[asn] }

// PrefixInfoFor returns ground truth for an originated prefix.
func (t *Topology) PrefixInfoFor(p netip.Prefix) (*PrefixInfo, bool) {
	pi, ok := t.prefixByAddr[p]
	return pi, ok
}

// NumLinks returns the number of undirected relationship edges.
func (t *Topology) NumLinks() int {
	n := 0
	//vnslint:maprange commutative integer sum; order cannot escape
	for _, a := range t.ASes {
		n += len(a.Customers) + len(a.Peers)
	}
	// Peer edges are stored on both sides; customer edges only counted
	// from the provider side.
	return n - t.numPeerEdges()/2
}

func (t *Topology) numPeerEdges() int {
	n := 0
	//vnslint:maprange commutative integer sum; order cannot escape
	for _, a := range t.ASes {
		n += len(a.Peers)
	}
	return n
}
