package vns

import (
	"vns/internal/geo"
)

// EntryPoP models where VNS receives traffic a client AS sends to the
// anycast address of its TURN relays. The deployment shapes incoming
// catchments with geographically limited transit, traffic engineering,
// and BGP communities; the resulting behaviour is:
//
//   - if the client sits in the customer cone of a VNS peer, the peer
//     delivers at the shared IXP nearest the client (peer routes are
//     shorter and preferred by the client's own policy);
//   - otherwise traffic arrives through an upstream, which hot-potatoes
//     it into VNS at its session closest to the client.
func (pr *Peering) EntryPoP(client uint16) *PoP {
	a := pr.Topo.AS(client)
	if a == nil {
		return nil
	}
	// Peer-cone delivery.
	var best *PoP
	bestDist := 1e18
	for _, nb := range pr.Neighbors {
		if nb.Kind != Peer || !nb.View.InCustomerCone(client) {
			continue
		}
		for _, s := range nb.Sessions {
			if d := geo.DistanceKm(a.Home.Pos, s.PoP.Place.Pos); d < bestDist {
				bestDist, best = d, s.PoP
			}
		}
	}
	if best != nil {
		return best
	}
	// Upstream delivery: pick the upstream with the best route to the
	// client (fewest hops: the one the client's route to VNS most likely
	// traverses), then its session nearest the client.
	bestHops := 1 << 30
	var viaUp *Neighbor
	for _, nb := range pr.Neighbors {
		if nb.Kind != Upstream {
			continue
		}
		if _, hops, ok := nb.View.Best(client); ok && hops < bestHops {
			bestHops, viaUp = hops, nb
		}
	}
	if viaUp == nil {
		return nil
	}
	bestDist = 1e18
	for _, s := range viaUp.Sessions {
		if d := geo.DistanceKm(a.Home.Pos, s.PoP.Place.Pos); d < bestDist {
			bestDist, best = d, s.PoP
		}
	}
	return best
}
