package vns

import (
	"net/netip"

	"vns/internal/fib"
	"vns/internal/geo"
	"vns/internal/topo"
)

// DataPlane answers delay questions about paths in and around VNS. It
// combines the L2 topology (internal legs) with the topo.DelayModel
// (external legs over the public Internet).
type DataPlane struct {
	Peering *Peering
	Delay   *topo.DelayModel
}

// NewDataPlane builds the data plane for a peering with the given model
// seed.
func NewDataPlane(pr *Peering, seed uint64) *DataPlane {
	return &DataPlane{Peering: pr, Delay: topo.NewDelayModel(pr.Topo, seed)}
}

// LocalEgressSession returns the session a probe "forced out of VNS
// immediately" at PoP p uses for a destination: the local BGP best among
// sessions at p (shortest AS path, deterministic tie-break).
func (dp *DataPlane) LocalEgressSession(p *PoP, origin uint16) (Candidate, bool) {
	all := dp.Peering.Candidates(origin)
	local := make([]Candidate, 0, 8)
	for _, c := range all {
		if c.Session.PoP == p {
			local = append(local, c)
		}
	}
	if len(local) == 0 {
		return Candidate{}, false
	}
	// All-local candidates: hot-potato selection degenerates to path
	// length plus deterministic tie-breaks.
	return dp.Peering.SelectHotPotato(p, local, netip.Prefix{})
}

// LocalUpstreamSession is LocalEgressSession restricted to transit
// sessions, used when a measurement is explicitly sent "through the
// upstreams" as in the paper's delay comparison.
func (dp *DataPlane) LocalUpstreamSession(p *PoP, origin uint16) (Candidate, bool) {
	all := dp.Peering.Candidates(origin)
	local := make([]Candidate, 0, 8)
	for _, c := range all {
		if c.Session.PoP == p && c.Session.Neighbor.Kind == Upstream {
			local = append(local, c)
		}
	}
	if len(local) == 0 {
		return Candidate{}, false
	}
	return dp.Peering.SelectHotPotato(p, local, netip.Prefix{})
}

// ExternalRTTViaUpstream is ExternalRTT forced through the vantage
// PoP's best transit session.
func (dp *DataPlane) ExternalRTTViaUpstream(p *PoP, dst *topo.PrefixInfo) (float64, bool) {
	c, ok := dp.LocalUpstreamSession(p, dst.Origin)
	if !ok {
		return 0, false
	}
	return dp.Delay.RTT(p.Place, dst, c.PathLen, dp.hairpinWaypoint(c, dst)...), true
}

// hairpinWaypoint returns the forced detour for the session, modeling
// the Figure 11 London anomaly: London's main upstream is a US-based
// tier-1, so some of its traffic to European destinations crosses the
// Atlantic and comes back.
func (dp *DataPlane) hairpinWaypoint(c Candidate, dst *topo.PrefixInfo) []geo.LatLon {
	if c.Session.PoP.Code == "LON" && c.Session.Neighbor.Index == 1 &&
		geo.PoPRegion(dst.Region) == geo.RegionEU {
		return []geo.LatLon{geo.MustLookup("Ashburn").Pos}
	}
	return nil
}

// ExternalRTT returns the modeled RTT of a probe leaving VNS immediately
// at PoP p toward dst over the public Internet (the paper's per-PoP
// probing methodology).
func (dp *DataPlane) ExternalRTT(p *PoP, dst *topo.PrefixInfo) (float64, bool) {
	c, ok := dp.LocalEgressSession(p, dst.Origin)
	if !ok {
		return 0, false
	}
	return dp.Delay.RTT(p.Place, dst, c.PathLen, dp.hairpinWaypoint(c, dst)...), true
}

// InternalRTTMs returns the round-trip delay between two PoPs across the
// dedicated L2 topology.
func (dp *DataPlane) InternalRTTMs(a, b *PoP) float64 {
	return 2 * dp.Peering.Net.IGPMetricMs(a, b)
}

// ThroughVNSRTT returns the RTT from an ingress PoP to a destination
// when traffic rides VNS's dedicated links to the egress PoP and exits
// there (cold potato): internal leg plus the egress's external leg.
func (dp *DataPlane) ThroughVNSRTT(ingress, egress *PoP, dst *topo.PrefixInfo) (float64, bool) {
	c, ok := dp.LocalEgressSession(egress, dst.Origin)
	if !ok {
		return 0, false
	}
	external := dp.Delay.RTT(egress.Place, dst, c.PathLen, dp.hairpinWaypoint(c, dst)...)
	return dp.InternalRTTMs(ingress, egress) + external, true
}

// ThroughVNSRTTFIB is the FIB-backed counterpart of ThroughVNSRTT: the
// egress PoP and session come from the ingress PoP's compiled
// forwarding table rather than from an analytic selection, so the
// modeled RTT reflects the routing state packets actually traverse
// (including force-exit and static-override prefixes). The analytic
// path remains for the measurement sweeps; congruence between the two
// is asserted in tests.
func (dp *DataPlane) ThroughVNSRTTFIB(f *Forwarding, ingress *PoP, dst *topo.PrefixInfo) (float64, bool) {
	nh, ok := f.EngineByID(ingress.ID).Lookup(dst.Prefix.Addr())
	if !ok {
		return 0, false
	}
	egress := dp.Peering.Net.PoPByID(nh.PoP)
	c, ok := dp.sessionFor(egress, nh, dst.Origin)
	if !ok {
		return 0, false
	}
	external := dp.Delay.RTT(egress.Place, dst, c.PathLen, dp.hairpinWaypoint(c, dst)...)
	return dp.InternalRTTMs(ingress, egress) + external, true
}

// sessionFor maps a FIB next hop back to the candidate session carrying
// the external leg. Statically pinned next hops (Neighbor 0) have no
// session of their own; traffic leaves on the egress PoP's local best,
// which is what holding a covering route guarantees exists.
func (dp *DataPlane) sessionFor(egress *PoP, nh fib.NextHop, origin uint16) (Candidate, bool) {
	for _, c := range dp.Peering.Candidates(origin) {
		if c.Session.PoP == egress && c.Session.Router == nh.Router &&
			c.Session.Neighbor.Index == nh.Neighbor {
			return c, true
		}
	}
	return dp.LocalEgressSession(egress, origin)
}
