package vns

import (
	"vns/internal/geo"
	"vns/internal/loss"
	"vns/internal/netsim"
)

// This file builds packet-level (netsim) paths for VNS routes, so media
// sessions can run through the full discrete-event simulator — queueing,
// serialization, jitter and all — instead of the statistical fast path.
// The experiments use the fast path for scale and the emulated path to
// validate it (TestEmulationAgreesWithFastPath).

// EmulateOptions tunes the constructed path.
type EmulateOptions struct {
	// BandwidthMbps per L2 link; the overlay is well-provisioned, so
	// the default of 1000 leaves media traffic far from saturation.
	BandwidthMbps float64
	// JitterMsSigma models residual cross-traffic on multiplexed
	// long-haul links; intra-cluster links get a tenth of it.
	JitterMsSigma float64
	// LongHaulLoss attaches the residual loss process to long-haul
	// crossings; nil means lossless links.
	LongHaulLoss func(rng *loss.RNG) loss.Model
	// Seed drives the per-link randomness.
	Seed uint64
}

func (o EmulateOptions) withDefaults() EmulateOptions {
	if o.BandwidthMbps == 0 {
		o.BandwidthMbps = 1000
	}
	if o.JitterMsSigma == 0 {
		o.JitterMsSigma = 0.5
	}
	return o
}

// EmulatedPath builds a netsim path following the internal L2 route from
// one PoP to another: one simulated link per L2 hop, with propagation
// delay from great-circle geometry.
func (n *Network) EmulatedPath(from, to *PoP, opts EmulateOptions) *netsim.Path {
	opts = opts.withDefaults()
	rng := loss.NewRNG(opts.Seed ^ 0xE1117)
	pops := n.InternalPath(from, to)
	var links []*netsim.Link
	for i := 1; i < len(pops); i++ {
		a, b := pops[i-1], pops[i]
		dist := geo.DistanceKm(a.Place.Pos, b.Place.Pos)
		var lm loss.Model
		jitter := opts.JitterMsSigma / 10
		if dist >= 7000 {
			jitter = opts.JitterMsSigma
			if opts.LongHaulLoss != nil {
				lm = opts.LongHaulLoss(rng.Fork(uint64(i)))
			}
		}
		// geo.KmPerMsRTT converts km to round-trip ms; a link's
		// propagation delay is one way, i.e. half of that.
		link := netsim.NewLink(
			a.Code+"-"+b.Code,
			dist/geo.KmPerMsRTT/2,
			opts.BandwidthMbps,
			lm,
			rng.Fork(uint64(i)+1000),
		)
		link.JitterMsSigma = jitter
		links = append(links, link)
	}
	return netsim.NewPath(links...)
}
