package vns

import (
	"math"
	"testing"

	"vns/internal/loss"
	"vns/internal/media"
	"vns/internal/netsim"
)

func TestEmulatedPathDelayMatchesIGP(t *testing.T) {
	n := NewNetwork()
	for _, pair := range [][2]string{{"AMS", "SIN"}, {"LON", "ASH"}, {"OSL", "SYD"}, {"SJS", "ATL"}} {
		a, b := n.PoP(pair[0]), n.PoP(pair[1])
		path := n.EmulatedPath(a, b, EmulateOptions{})
		// One-way emulated delay must equal the IGP metric (both derive
		// from the same L2 geometry).
		if got, want := path.OneWayDelayMs(), n.IGPMetricMs(a, b); math.Abs(got-want) > 0.01 {
			t.Errorf("%s-%s: emulated %.2f ms vs IGP %.2f ms", pair[0], pair[1], got, want)
		}
	}
}

func TestEmulatedPathSamePoP(t *testing.T) {
	n := NewNetwork()
	p := n.EmulatedPath(n.PoP("AMS"), n.PoP("AMS"), EmulateOptions{})
	if len(p.Links) != 0 || p.OneWayDelayMs() != 0 {
		t.Errorf("self path = %+v", p)
	}
}

// TestEmulationAgreesWithFastPath validates the statistical fast path
// against the full discrete-event simulation: same loss process, same
// trace — the measured loss rates must agree.
func TestEmulationAgreesWithFastPath(t *testing.T) {
	n := NewNetwork()
	ams, sin := n.PoP("AMS"), n.PoP("SIN")
	trace := media.GenerateTrace(media.TraceConfig{Definition: media.Def1080p, DurationSec: 60, Seed: 9})

	const legLoss = 0.0005 // 0.05% per long-haul crossing
	emu := n.EmulatedPath(ams, sin, EmulateOptions{
		Seed: 4,
		LongHaulLoss: func(rng *loss.RNG) loss.Model {
			return loss.NewUniform(legLoss, rng)
		},
	})
	var sim netsim.Sim
	emuStats := media.RunOverPath(&sim, emu, trace)
	sim.RunAll()

	// Fast path: one uniform model per long-haul crossing, composed.
	crossings := 0
	for _, l := range emu.Links {
		if l.Loss != nil {
			crossings++
		}
	}
	if crossings == 0 {
		t.Fatal("no lossy crossings on AMS-SIN")
	}
	rng := loss.NewRNG(99)
	var composed loss.Compose
	for i := 0; i < crossings; i++ {
		composed = append(composed, loss.NewUniform(legLoss, rng.Fork(uint64(i))))
	}
	fastStats := media.FastRun(trace, composed, 0, emu.OneWayDelayMs(), 0.5, rng.Fork(77))

	// Both should measure ~crossings * 0.05% loss; allow generous
	// stochastic slack but demand the same magnitude.
	want := float64(crossings) * legLoss * 100
	for name, got := range map[string]float64{
		"emulated": emuStats.LossPct(),
		"fast":     fastStats.LossPct(),
	} {
		if got < want/3 || got > want*3 {
			t.Errorf("%s loss = %.4f%%, want ~%.4f%%", name, got, want)
		}
	}
	// And the emulated delay must match: receiver jitter small, packets
	// delivered ~ one-way delay after send (checked via the jitter
	// estimator having seen transit around OneWayDelayMs).
	if emuStats.Received == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestEmulatedPathJitterOnLongHaul(t *testing.T) {
	n := NewNetwork()
	path := n.EmulatedPath(n.PoP("AMS"), n.PoP("SIN"), EmulateOptions{JitterMsSigma: 2, Seed: 8})
	trace := media.GenerateTrace(media.TraceConfig{Definition: media.Def720p, DurationSec: 10, Seed: 10})
	var sim netsim.Sim
	st := media.RunOverPath(&sim, path, trace)
	sim.RunAll()
	if st.Jitter.Jitter() <= 0 {
		t.Error("long-haul path produced no jitter")
	}
	if st.Jitter.Jitter() > 20 {
		t.Errorf("jitter %.1f ms implausibly high", st.Jitter.Jitter())
	}
}
