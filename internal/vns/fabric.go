package vns

import (
	"sync"

	"vns/internal/geo"
	"vns/internal/loss"
	"vns/internal/netsim"
)

// L2Fabric is the deployment's physical internal fabric: exactly one
// simulated link per directed L2 adjacency, shared by every path that
// crosses it. Sharing is what makes failures meaningful — downing the
// LON→ASH link affects every flow and liveness session that traverses
// it, unlike EmulatedPath, which builds private links per call.
//
// The fabric separates the two halves of a failure. SetAdmin downs the
// data-plane links themselves (fault injection: packets start dropping
// immediately). SetLinkState updates the control plane's view — the
// Network IGP — and invalidates composed paths, and is only called once
// liveness detection has noticed the fault (internal/health).
type L2Fabric struct {
	net  *Network
	opts EmulateOptions

	mu    sync.Mutex
	links map[[2]int]*netsim.Link // directed, keyed by 1-based PoP id pair
	order [][2]int                // deterministic iteration order
	paths map[[2]int]*netsim.Path
	// blackhole absorbs packets sent toward a PoP the IGP currently has
	// no path to (transient, between detection and FIB reconvergence).
	blackhole *netsim.Link
}

// NewL2Fabric builds the shared links for every directed L2 adjacency,
// with the same geometry-derived parameters EmulatedPath uses.
func NewL2Fabric(n *Network, opts EmulateOptions) *L2Fabric {
	opts = opts.withDefaults()
	f := &L2Fabric{
		net:   n,
		opts:  opts,
		links: make(map[[2]int]*netsim.Link),
		paths: make(map[[2]int]*netsim.Path),
	}
	rng := loss.NewRNG(opts.Seed ^ 0xFAB21C)
	for i, l := range n.L2Links() {
		a, b := l[0], l[1]
		dist := geo.DistanceKm(a.Place.Pos, b.Place.Pos)
		for dir, ends := range [][2]*PoP{{a, b}, {b, a}} {
			from, to := ends[0], ends[1]
			var lm loss.Model
			jitter := opts.JitterMsSigma / 10
			if dist >= 7000 {
				jitter = opts.JitterMsSigma
				if opts.LongHaulLoss != nil {
					lm = opts.LongHaulLoss(rng.Fork(uint64(2*i + dir)))
				}
			}
			link := netsim.NewLink(
				from.Code+"-"+to.Code,
				dist/geo.KmPerMsRTT/2,
				opts.BandwidthMbps,
				lm,
				rng.Fork(uint64(2*i+dir)+1000),
			)
			link.JitterMsSigma = jitter
			key := [2]int{from.ID, to.ID}
			f.links[key] = link
			f.order = append(f.order, key)
		}
	}
	f.blackhole = netsim.NewLink("unreachable", 0, 0, nil, nil)
	f.blackhole.SetAdminDown(true)
	return f
}

// Network returns the topology the fabric is built over.
func (f *L2Fabric) Network() *Network { return f.net }

// Link returns the shared directed link between two adjacent PoPs, or
// nil when no direct L2 link exists.
func (f *L2Fabric) Link(from, to *PoP) *netsim.Link {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.links[[2]int{from.ID, to.ID}]
}

// Links returns every directed link in deterministic order, for stats
// sweeps and loss attribution.
func (f *L2Fabric) Links() []*netsim.Link {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*netsim.Link, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.links[key])
	}
	return out
}

// Path implements fib.Fabric: the internal path between two PoPs,
// composed from the shared links along the current IGP shortest path
// and cached until the topology changes. A same-PoP path is nil; a pair
// the IGP cannot currently connect gets a blackhole path, so in-flight
// traffic drops (as DropsAdmin) instead of being misdelivered.
func (f *L2Fabric) Path(from, to int) *netsim.Path {
	if from == to {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := [2]int{from, to}
	if p, ok := f.paths[key]; ok {
		return p
	}
	pops := f.net.InternalPath(f.net.PoPByID(from), f.net.PoPByID(to))
	var p *netsim.Path
	if pops == nil {
		p = netsim.NewPath(f.blackhole)
	} else {
		links := make([]*netsim.Link, 0, len(pops)-1)
		for i := 1; i < len(pops); i++ {
			links = append(links, f.links[[2]int{pops[i-1].ID, pops[i].ID}])
		}
		p = netsim.NewPath(links...)
	}
	f.paths[key] = p
	return p
}

// InvalidatePaths drops every composed path, forcing recomposition
// against the current IGP on next use.
func (f *L2Fabric) InvalidatePaths() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paths = make(map[[2]int]*netsim.Path)
}

// SetAdmin administratively downs (or restores) both directions of the
// data-plane link between two adjacent PoPs. This is the fault itself:
// the control plane learns about it only through liveness detection.
func (f *L2Fabric) SetAdmin(a, b *PoP, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[[2]int{a.ID, b.ID}].SetAdminDown(down)
	f.links[[2]int{b.ID, a.ID}].SetAdminDown(down)
}

// SetExtraDelayMs installs a delay spike on both directions of the link
// between two adjacent PoPs (0 clears it).
func (f *L2Fabric) SetExtraDelayMs(a, b *PoP, ms float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[[2]int{a.ID, b.ID}].SetExtraDelayMs(ms)
	f.links[[2]int{b.ID, a.ID}].SetExtraDelayMs(ms)
}

// SetLinkState is the control-plane reaction to a detected failure or
// recovery: update the Network's IGP view of the link and recompose
// paths. It reports whether the view changed.
func (f *L2Fabric) SetLinkState(a, b *PoP, up bool) bool {
	changed := f.net.SetL2LinkState(a, b, up)
	if changed {
		f.InvalidatePaths()
	}
	return changed
}
