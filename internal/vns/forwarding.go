package vns

import (
	"net/netip"
	"sync"
	"time"

	"vns/internal/core"
	"vns/internal/detsort"
	"vns/internal/fib"
	"vns/internal/media"
	"vns/internal/netsim"
	"vns/internal/telemetry"
)

// This file wires the compiled forwarding plane (internal/fib) into the
// VNS deployment: every PoP owns a FIB compiled from the GeoRR's
// post-policy route decisions, packets resolve their egress by
// longest-prefix match against it, and management overrides
// (force-exit, static more-specifics) flow into the data path through
// the reflector's change notifications.

// ForwardingConfig tunes the forwarding plane.
type ForwardingConfig struct {
	// Debounce batches a burst of control-plane changes into one FIB
	// recompile per PoP. Zero recompiles synchronously, which
	// deterministic tests want; daemons should set a few tens of
	// milliseconds.
	Debounce time.Duration
	// Emulate tunes the internal netsim paths packets are forwarded
	// over.
	Emulate EmulateOptions
	// Telemetry, when non-nil, receives the forwarding-plane metric
	// families: per-PoP engine and FIB state through render-time
	// collectors, per-link fabric counters, media flow counters, and
	// the (volatile) compile-latency histogram.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records cross-layer decision and media-flow
	// spans (TraceRoute, ForwardStream).
	Tracer *telemetry.Tracer
	// ConvergenceClock, when non-nil, supplies timestamps for the
	// convergence span layer instead of the tracer's clock. Daemons pass
	// a wall-seconds adapter (and mark the latency families volatile) so
	// stage decompositions carry real durations; simulation harnesses
	// leave it nil and stay on the virtual clock, which keeps the
	// families deterministic and golden-pinnable.
	ConvergenceClock func() float64
}

// Forwarding is the deployment's forwarding plane: one fib.Publisher
// and fib.Engine per PoP, compiled from the GeoRR's post-policy routes,
// plus the shared L2 fabric the engines forward over. It implements
// fib.Fabric.
type Forwarding struct {
	Peering *Peering
	RR      *core.GeoRR

	pubs    map[int]*fib.Publisher // by 1-based PoP id
	engines map[int]*fib.Engine

	// resolveMu serializes route resolution: Peering's candidate cache
	// is not safe for concurrent mutation, and publisher flushes may run
	// on debounce-timer goroutines.
	resolveMu sync.Mutex

	fabric *L2Fabric

	tracer *telemetry.Tracer
	// conv is the deployment's shared convergence span layer (nil
	// without telemetry): the reflector, failover controller, and
	// adaptive controller all borrow this instance, because event-ID
	// attribution is per-instance state.
	conv *telemetry.Convergence
	// Pre-resolved media flow counters (nil without telemetry).
	mediaStreams  *telemetry.Counter
	mediaSent     *telemetry.Counter
	mediaReceived *telemetry.Counter
	mediaLost     *telemetry.Counter
}

// NewForwarding compiles the initial per-PoP FIBs and subscribes to the
// reflector's change notifications, so later management overrides and
// re-advertisements trigger incremental recompiles.
func NewForwarding(pr *Peering, rr *core.GeoRR, cfg ForwardingConfig) *Forwarding {
	f := &Forwarding{
		Peering: pr,
		RR:      rr,
		pubs:    make(map[int]*fib.Publisher, len(pr.Net.PoPs)),
		engines: make(map[int]*fib.Engine, len(pr.Net.PoPs)),
		fabric:  NewL2Fabric(pr.Net, cfg.Emulate),
		tracer:  cfg.Tracer,
	}
	var compileObs func(time.Duration)
	var flushObs func(uint64, int, bool, time.Duration)
	if cfg.Telemetry != nil {
		// Compile latency is wall-clock, so the family is volatile:
		// rendered on the admin endpoint, excluded from deterministic
		// snapshots.
		h := cfg.Telemetry.Histogram("fib_compile_seconds", "FIB trie compile latency", telemetry.DefBuckets)
		cfg.Telemetry.MarkVolatile("fib_compile_seconds")
		compileObs = func(d time.Duration) { h.Observe(d.Seconds()) }
		// The convergence span layer: each publisher flush reports the
		// event ID its invalidation carried, closing the causal loop
		// from routing-plane event to FIB compile.
		f.conv = telemetry.NewConvergence(cfg.Telemetry, cfg.Tracer, cfg.ConvergenceClock)
		conv := f.conv
		// Compile durations are wall time (fib.FIB.CompileDuration); the
		// stage families must stay on one clock. Without a wall
		// ConvergenceClock the layer runs on the virtual clock, where a
		// compile takes zero simulated time — record 0 so the observation
		// counts stay pinnable and the sums deterministic.
		wall := cfg.ConvergenceClock != nil
		flushObs = func(event uint64, patches int, delta bool, d time.Duration) {
			sec := 0.0
			if wall {
				sec = d.Seconds()
			}
			conv.ObserveCompileFor(event, sec)
		}
	}
	for _, p := range pr.Net.PoPs {
		vantage := p
		pub := fib.NewPublisher(fib.Config{
			Resolve:         func(pfx netip.Prefix) (fib.NextHop, bool) { return f.resolveLocked(vantage, pfx) },
			Debounce:        cfg.Debounce,
			CompileObserver: compileObs,
			FlushObserver:   flushObs,
		})
		f.pubs[p.ID] = pub
		f.engines[p.ID] = fib.NewEngine(p.ID, pub, f)
	}
	if cfg.Telemetry != nil {
		f.registerTelemetry(cfg.Telemetry)
	}
	// Subscribe before the initial compile so no change can fall
	// between them. The batch form hands each change event's full
	// prefix set to the publishers in one call, so a multi-prefix
	// UPDATE costs one flush (typically one delta publish) per PoP
	// instead of one per prefix.
	rr.OnChangeBatch(f.InvalidateBatch)
	f.RecompileAll()
	return f
}

// universe returns every prefix the forwarding plane should know: all
// originated prefixes plus statically advertised more-specifics.
func (f *Forwarding) universe() []netip.Prefix {
	statics := f.RR.Statics()
	out := make([]netip.Prefix, 0, len(f.Peering.Topo.Prefixes)+len(statics))
	for i := range f.Peering.Topo.Prefixes {
		out = append(out, f.Peering.Topo.Prefixes[i].Prefix)
	}
	for _, s := range statics {
		out = append(out, s.Prefix)
	}
	return out
}

// RecompileAll rebuilds every PoP's FIB from scratch (the initial table
// download; also useful after wholesale topology changes).
func (f *Forwarding) RecompileAll() {
	u := f.universe()
	for _, p := range f.Peering.Net.PoPs {
		f.pubs[p.ID].ResolveAll(u)
	}
}

// Invalidate marks one prefix dirty at every PoP. PoPs are visited
// in id order so debounce timers arm in a reproducible sequence.
func (f *Forwarding) Invalidate(prefix netip.Prefix) {
	f.InvalidateBatch([]netip.Prefix{prefix})
}

// InvalidateBatch marks a set of prefixes dirty at every PoP in one
// call per publisher. It is the rr.OnChangeBatch callback: the whole
// batch lands in a publisher's dirty set before its flush runs, so a
// change event costs one publish — a copy-on-write delta when the
// batch is small — rather than one per prefix.
func (f *Forwarding) InvalidateBatch(prefixes []netip.Prefix) {
	// Stamp each publisher with the in-flight convergence event, so the
	// flushes this invalidation causes report their compiles back to it
	// (fib.Config.FlushObserver) — the event ID's rib→fib crossing.
	event := f.conv.ActiveID()
	for _, id := range detsort.Keys(f.pubs) {
		f.pubs[id].InvalidateEvent(event, prefixes...)
	}
}

// InvalidateAll marks the whole universe dirty at every PoP — the
// failover controller's reconvergence path after a link or PoP event.
// Unlike RecompileAll it flows through the dirty-prefix machinery, so
// prefixes whose next hop is unaffected cost a resolve but no publish
// (the Publisher's no-spurious-churn fast path).
func (f *Forwarding) InvalidateAll() {
	u := f.universe()
	event := f.conv.ActiveID()
	for _, id := range detsort.Keys(f.pubs) {
		f.pubs[id].InvalidateEvent(event, u...)
	}
}

// Convergence returns the deployment's shared convergence span layer
// (nil without telemetry). The reflector, failover controller, and
// adaptive controller attach to this one instance so their events share
// the ID space the publishers attribute compiles against.
func (f *Forwarding) Convergence() *telemetry.Convergence { return f.conv }

// Flush forces every pending recompile now (useful with a non-zero
// debounce when a test or shutdown needs a consistent state).
func (f *Forwarding) Flush() {
	for _, id := range detsort.Keys(f.pubs) {
		f.pubs[id].Flush()
	}
}

// Resolve computes the control-plane decision for one prefix as seen
// from a vantage PoP, under the resolver lock. It is the reference
// answer the compiled per-PoP FIBs are differentially tested against
// (internal/scenario's three-way agreement invariant).
func (f *Forwarding) Resolve(vantage *PoP, prefix netip.Prefix) (fib.NextHop, bool) {
	return f.resolveLocked(vantage, prefix)
}

// resolveLocked computes the control-plane decision for one prefix as
// seen from a vantage PoP: static more-specifics pin their configured
// egress; everything else runs the post-policy (GeoRR local-pref)
// decision process over the candidate sessions. Called from publishers
// with their lock held.
func (f *Forwarding) resolveLocked(vantage *PoP, prefix netip.Prefix) (fib.NextHop, bool) {
	f.resolveMu.Lock()
	defer f.resolveMu.Unlock()
	return f.resolve(vantage, prefix)
}

func (f *Forwarding) resolve(vantage *PoP, prefix netip.Prefix) (fib.NextHop, bool) {
	for _, s := range f.RR.Statics() {
		if s.Prefix == prefix {
			if p, ok := f.Peering.Net.RouterPoP(s.Egress); ok && f.usable(vantage, p, s.Egress) {
				return fib.NextHop{PoP: p.ID, Router: s.Egress}, true
			}
		}
	}
	pi, ok := f.Peering.Topo.PrefixInfoFor(prefix)
	if !ok {
		return fib.NextHop{}, false
	}
	cands := f.Peering.Candidates(pi.Origin)
	cands = f.healthyCandidates(vantage, cands)
	best, ok := f.Peering.SelectGeo(f.RR, vantage, cands, prefix)
	if !ok {
		return fib.NextHop{}, false
	}
	return fib.NextHop{
		PoP:      best.Session.PoP.ID,
		Router:   best.Session.Router,
		Neighbor: best.Session.Neighbor.Index,
	}, true
}

// usable reports whether an egress router at a PoP can currently carry
// traffic from the vantage: the reflector must not have marked the
// router down (liveness withdrawal) and the PoP must be IGP-reachable.
func (f *Forwarding) usable(vantage, at *PoP, router netip.Addr) bool {
	return !f.RR.EgressDown(router) && f.Peering.Net.Reachable(vantage, at)
}

// healthyCandidates filters a candidate set down to usable sessions —
// the forwarding-plane half of route withdrawal. With no failures
// present it returns the input slice unchanged (no allocation).
func (f *Forwarding) healthyCandidates(vantage *PoP, cands []Candidate) []Candidate {
	for i, c := range cands {
		if !f.usable(vantage, c.Session.PoP, c.Session.Router) {
			out := make([]Candidate, 0, len(cands)-1)
			out = append(out, cands[:i]...)
			for _, c := range cands[i+1:] {
				if f.usable(vantage, c.Session.PoP, c.Session.Router) {
					out = append(out, c)
				}
			}
			return out
		}
	}
	return cands
}

// Path implements fib.Fabric: the internal netsim path between two
// PoPs over the shared L2 fabric. Links are shared across flows and
// with the liveness sessions, so queueing state and failures are felt
// by everything that crosses them. A same-PoP path is nil.
func (f *Forwarding) Path(from, to int) *netsim.Path {
	return f.fabric.Path(from, to)
}

// Fabric returns the shared L2 fabric (fault injection and liveness
// monitoring hook into it).
func (f *Forwarding) Fabric() *L2Fabric { return f.fabric }

// Engine returns the forwarding engine of the PoP with the given
// Figure 11 code ("LON").
func (f *Forwarding) Engine(code string) *fib.Engine {
	return f.engines[f.Peering.Net.PoP(code).ID]
}

// EngineByID returns the forwarding engine of the PoP with the given
// paper number.
func (f *Forwarding) EngineByID(id int) *fib.Engine { return f.engines[id] }

// Engines returns all engines in PoP-id order.
func (f *Forwarding) Engines() []*fib.Engine {
	out := make([]*fib.Engine, 0, len(f.engines))
	for _, p := range f.Peering.Net.PoPs {
		out = append(out, f.engines[p.ID])
	}
	return out
}

// Congruence checks the compiled data plane against the control plane:
// for every originated prefix it compares the egress PoP the vantage
// engine's FIB selects with a fresh control-plane decision (SelectGeo
// plus management overrides). It returns the number of destinations
// where both agree and the number with a route on either side; the two
// should match for (nearly) all destinations whenever the FIB is
// caught up.
func (f *Forwarding) Congruence(vantage *PoP) (match, total int) {
	eng := f.engines[vantage.ID]
	f.resolveMu.Lock()
	defer f.resolveMu.Unlock()
	for i := range f.Peering.Topo.Prefixes {
		pfx := f.Peering.Topo.Prefixes[i].Prefix
		nh, fibOK := eng.Lookup(pfx.Addr())
		want, cpOK := f.resolve(vantage, pfx)
		if !fibOK && !cpOK {
			continue // unreachable on both sides: congruent, uncounted
		}
		total++
		if fibOK && cpOK && nh.PoP == want.PoP {
			match++
		}
	}
	if f.tracer != nil {
		// Each recheck leaves an instant span, so a convergence trace shows
		// when (and how completely) the data plane was re-verified against
		// the control plane after an event.
		f.tracer.Event(f.tracer.StartTrace(), "convergence", "congruence_check",
			telemetry.Int("pop", vantage.ID),
			telemetry.Int("match", match),
			telemetry.Int("total", total))
	}
	return match, total
}

// ForwardStream plays a media trace from an ingress PoP through the
// forwarding plane toward dst: every RTP packet is resolved against the
// ingress engine's current FIB and driven hop by hop across the
// internal fabric to its egress PoP. It returns the receiver-side
// stream stats and the packet count delivered per egress PoP id (under
// stable routing a single egress carries the whole stream; a recompile
// mid-stream shifts the remainder). The caller runs the simulator.
func (f *Forwarding) ForwardStream(sim *netsim.Sim, ingress *PoP, dst netip.Addr, tr *media.Trace) (*media.StreamStats, map[int]int) {
	eng := f.engines[ingress.ID]
	st := media.NewStreamStats(tr.Definition, tr.DurationSec)
	egress := make(map[int]int)
	start := sim.Now()
	flow := f.traceStreamStart(ingress, dst, len(tr.Packets))
	if f.mediaStreams != nil {
		f.mediaStreams.Inc()
	}
	for i, p := range tr.Packets {
		p := p
		seq := uint32(i)
		sim.Schedule(start+p.AtSec, func() {
			st.RecordSent(p.AtSec)
			if f.mediaSent != nil {
				f.mediaSent.Inc()
			}
			sentAt := sim.Now()
			_, ok := eng.Forward(sim, dst, netsim.Packet{Seq: seq, Size: p.Size},
				func(pkt netsim.Packet, nh fib.NextHop) {
					egress[nh.PoP]++
					st.RecordReceived(p.AtSec*1000, (sim.Now()-start)*1000)
					if f.mediaReceived != nil {
						f.mediaReceived.Inc()
					}
					// One span per delivered first packet keeps flow
					// traces bounded while still pinning the path taken.
					if flow != 0 && seq == 0 {
						f.tracer.Record(flow, "netsim", "deliver", sentAt, sim.Now(),
							telemetry.Int("egress_pop", nh.PoP))
					}
				},
				func(hop int) {
					st.RecordLost(p.AtSec)
					if f.mediaLost != nil {
						f.mediaLost.Inc()
					}
					if flow != 0 && seq == 0 {
						f.tracer.Record(flow, "netsim", "drop", sentAt, sim.Now(),
							telemetry.Int("hop", hop))
					}
				})
			if !ok {
				st.RecordLost(p.AtSec)
				if f.mediaLost != nil {
					f.mediaLost.Inc()
				}
				if flow != 0 && seq == 0 {
					f.tracer.Event(flow, "fib", "no_route")
				}
			}
		})
	}
	return st, egress
}

var _ fib.Fabric = (*Forwarding)(nil)
