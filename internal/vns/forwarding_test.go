package vns

import (
	"net/netip"
	"testing"
	"time"

	"vns/internal/core"
	"vns/internal/geoip"
	"vns/internal/media"
	"vns/internal/netsim"
	"vns/internal/probe"
)

// forwardingSetup builds a peering with a perfect-GeoIP GeoRR (every
// prefix geolocated exactly) and a synchronous forwarding plane over it.
func forwardingSetup(t *testing.T, cfg ForwardingConfig) (*Peering, *core.GeoRR, *Forwarding) {
	t.Helper()
	_, pr := testSetup(t)
	db := geoip.New()
	for i := range pr.Topo.Prefixes {
		pi := &pr.Topo.Prefixes[i]
		db.Insert(geoip.Record{Prefix: pi.Prefix, Pos: pi.Loc, Country: pi.Country, Region: pi.Region})
	}
	rr := core.New(core.Config{DB: db})
	for _, p := range pr.Net.PoPs {
		for _, r := range p.Routers {
			rr.AddEgress(core.Egress{ID: r, Pos: p.Place.Pos, PoP: p.Code})
		}
	}
	return pr, rr, NewForwarding(pr, rr, cfg)
}

// TestForwardingCongruence checks the ISSUE's core acceptance property:
// the compiled per-PoP FIBs agree with a fresh control-plane decision
// for (at least) 99% of destinations — with synchronous recompiles it
// should be all of them, at every PoP.
func TestForwardingCongruence(t *testing.T) {
	pr, _, f := forwardingSetup(t, ForwardingConfig{})
	for _, p := range pr.Net.PoPs {
		match, total := f.Congruence(p)
		if total == 0 {
			t.Fatalf("%s: no destinations counted", p.Code)
		}
		if float64(match) < 0.99*float64(total) {
			t.Errorf("%s: congruence %d/%d below 99%%", p.Code, match, total)
		}
	}
}

// TestForwardingForceExit pins a prefix to a non-default egress and
// checks the change propagates through the reflector's notification into
// the compiled FIB — and back out again on Unforce.
func TestForwardingForceExit(t *testing.T) {
	pr, rr, f := forwardingSetup(t, ForwardingConfig{})
	lon := pr.Net.PoP("LON")
	eng := f.Engine("LON")

	// Find a prefix with candidate sessions at more than one PoP.
	var prefix netip.Prefix
	var before int
	var altRouter netip.Addr
	var altPoP int
	for i := range pr.Topo.Prefixes {
		pi := &pr.Topo.Prefixes[i]
		nh, ok := eng.Lookup(pi.Prefix.Addr())
		if !ok {
			continue
		}
		for _, c := range pr.Candidates(pi.Origin) {
			if c.Session.PoP.ID != nh.PoP {
				prefix, before = pi.Prefix, nh.PoP
				altRouter, altPoP = c.Session.Router, c.Session.PoP.ID
				break
			}
		}
		if prefix.IsValid() {
			break
		}
	}
	if !prefix.IsValid() {
		t.Fatal("no multi-PoP prefix found")
	}

	if err := rr.ForceExit(prefix, altRouter); err != nil {
		t.Fatal(err)
	}
	if nh, ok := eng.Lookup(prefix.Addr()); !ok || nh.PoP != altPoP {
		t.Errorf("after ForceExit: egress PoP %d, want forced %d", nh.PoP, altPoP)
	}
	// The override must hold at every PoP, not just the vantage.
	for _, e := range f.Engines() {
		if nh, ok := e.Lookup(prefix.Addr()); !ok || nh.PoP != altPoP {
			t.Errorf("%s: forced exit not honored (pop %d)", e.String(), nh.PoP)
		}
	}
	// Congruence holds under management overrides too.
	if match, total := f.Congruence(lon); match != total {
		t.Errorf("congruence with forced exit: %d/%d", match, total)
	}

	rr.Unforce(prefix)
	if nh, ok := eng.Lookup(prefix.Addr()); !ok || nh.PoP != before {
		t.Errorf("after Unforce: egress PoP %d, want original %d", nh.PoP, before)
	}
}

// TestForwardingStaticMoreSpecific installs a static /24 inside an
// originated prefix and checks addresses under it divert to the pinned
// egress while the covering prefix keeps its geographic exit.
func TestForwardingStaticMoreSpecific(t *testing.T) {
	pr, rr, f := forwardingSetup(t, ForwardingConfig{})
	eng := f.Engine("LON")

	// Find a covering prefix shorter than /24 with a known egress.
	var cover netip.Prefix
	var coverPoP int
	for i := range pr.Topo.Prefixes {
		pi := &pr.Topo.Prefixes[i]
		if pi.Prefix.Bits() >= 24 {
			continue
		}
		if nh, ok := eng.Lookup(pi.Prefix.Addr()); ok {
			cover, coverPoP = pi.Prefix, nh.PoP
			break
		}
	}
	if !cover.IsValid() {
		t.Fatal("no covering prefix found")
	}
	// Pin a /24 inside it to a PoP that is not the cover's egress.
	syd := pr.Net.PoP("SYD")
	pin := syd
	if coverPoP == syd.ID {
		pin = pr.Net.PoP("OSL")
	}
	more, err := cover.Addr().Prefix(24)
	if err != nil {
		t.Fatal(err)
	}
	if err := rr.AddStatic(more, pin.Routers[0], nil); err != nil {
		t.Fatal(err)
	}

	if nh, ok := eng.Lookup(more.Addr()); !ok || nh.PoP != pin.ID {
		t.Errorf("static more-specific: egress PoP %d, want pinned %d", nh.PoP, pin.ID)
	}
	// An address in the cover but outside the /24 keeps the original exit.
	outside := netip.AddrFrom4([4]byte{
		more.Addr().As4()[0], more.Addr().As4()[1],
		more.Addr().As4()[2] + 1, 1,
	})
	if cover.Contains(outside) {
		if nh, ok := eng.Lookup(outside); !ok || nh.PoP != coverPoP {
			t.Errorf("outside static: egress PoP %d, want cover's %d", nh.PoP, coverPoP)
		}
	}

	rr.RemoveStatic(more, pin.Routers[0])
	if nh, ok := eng.Lookup(more.Addr()); !ok || nh.PoP != coverPoP {
		t.Errorf("after RemoveStatic: egress PoP %d, want cover's %d", nh.PoP, coverPoP)
	}
}

// TestForwardStreamReachesControlPlaneEgress plays an RTP trace from
// London through the forwarding plane and checks every packet leaves at
// the egress PoP the control plane selected — media rides the compiled
// routing state, hop by hop through netsim.
func TestForwardStreamReachesControlPlaneEgress(t *testing.T) {
	pr, _, f := forwardingSetup(t, ForwardingConfig{})
	lon := pr.Net.PoP("LON")
	eng := f.Engine("LON")

	// A destination whose egress is remote, so the stream crosses the
	// internal fabric.
	var dst netip.Addr
	var wantPoP int
	for i := range pr.Topo.Prefixes {
		pi := &pr.Topo.Prefixes[i]
		if nh, ok := eng.Lookup(pi.Prefix.Addr()); ok && nh.PoP != lon.ID {
			dst, wantPoP = pi.Prefix.Addr(), nh.PoP
			break
		}
	}
	if !dst.IsValid() {
		t.Fatal("no remote-egress destination found")
	}

	tr := media.GenerateTrace(media.TraceConfig{DurationSec: 10, Seed: 7})
	var sim netsim.Sim
	st, egress := f.ForwardStream(&sim, lon, dst, tr)
	sim.RunAll()

	if len(egress) != 1 {
		t.Fatalf("egress PoPs = %v, want exactly one", egress)
	}
	if egress[wantPoP] != tr.NumPackets() {
		t.Errorf("delivered %d/%d packets at PoP %d (map %v)",
			egress[wantPoP], tr.NumPackets(), wantPoP, egress)
	}
	if st.LossPct() != 0 {
		t.Errorf("loss %.2f%% on lossless fabric", st.LossPct())
	}
	es := f.EngineByID(lon.ID).Stats()
	if es.Relayed == 0 || es.NoRoute != 0 {
		t.Errorf("engine stats: %+v", es)
	}
}

// TestProbeTrainThroughForwardingPlane sends a probe train from London
// through the compiled plane and checks it exits at the FIB-selected
// PoP with a transit time consistent with the internal topology.
func TestProbeTrainThroughForwardingPlane(t *testing.T) {
	pr, _, f := forwardingSetup(t, ForwardingConfig{})
	lon := pr.Net.PoP("LON")
	eng := f.Engine("LON")

	var dst netip.Addr
	var wantPoP int
	for i := range pr.Topo.Prefixes {
		pi := &pr.Topo.Prefixes[i]
		if nh, ok := eng.Lookup(pi.Prefix.Addr()); ok && nh.PoP != lon.ID {
			dst, wantPoP = pi.Prefix.Addr(), nh.PoP
			break
		}
	}
	if !dst.IsValid() {
		t.Fatal("no remote-egress destination found")
	}

	var sim netsim.Sim
	res := probe.FIBTrain(&sim, eng, dst, 100)
	sim.RunAll()
	if res.Delivered != 100 || res.Egress[wantPoP] != 100 {
		t.Fatalf("delivered=%d egress=%v, want 100 at PoP %d", res.Delivered, res.Egress, wantPoP)
	}
	// The fastest probe cannot beat the IGP one-way delay (half the
	// internal RTT), and with no cross traffic should sit near it.
	oneWay := pr.Net.IGPMetricMs(lon, pr.Net.PoPByID(wantPoP))
	if res.MinTransitMs < oneWay-0.001 || res.MinTransitMs > oneWay+5 {
		t.Errorf("MinTransitMs = %.3f, want within [%.3f, %.3f]", res.MinTransitMs, oneWay, oneWay+5)
	}
}

// TestForwardingDebounce checks an update burst coalesces into one
// recompile per PoP and Flush forces pending state visible.
func TestForwardingDebounce(t *testing.T) {
	pr, rr, f := forwardingSetup(t, ForwardingConfig{Debounce: time.Hour})
	eng := f.Engine("LON")

	var prefix netip.Prefix
	var altRouter netip.Addr
	var altPoP int
	for i := range pr.Topo.Prefixes {
		pi := &pr.Topo.Prefixes[i]
		nh, ok := eng.Lookup(pi.Prefix.Addr())
		if !ok {
			continue
		}
		for _, c := range pr.Candidates(pi.Origin) {
			if c.Session.PoP.ID != nh.PoP {
				prefix, altRouter, altPoP = pi.Prefix, c.Session.Router, c.Session.PoP.ID
				break
			}
		}
		if prefix.IsValid() {
			break
		}
	}
	if !prefix.IsValid() {
		t.Fatal("no multi-PoP prefix found")
	}

	genBefore := eng.Stats().FIB.Generation
	if err := rr.ForceExit(prefix, altRouter); err != nil {
		t.Fatal(err)
	}
	// Debounced: the override is pending, not yet compiled.
	if gen := eng.Stats().FIB.Generation; gen != genBefore {
		t.Fatalf("recompile ran before debounce: gen %d -> %d", genBefore, gen)
	}
	if eng.Stats().FIB.Pending == 0 {
		t.Error("no pending dirty prefixes after ForceExit")
	}
	f.Flush()
	if nh, ok := eng.Lookup(prefix.Addr()); !ok || nh.PoP != altPoP {
		t.Errorf("after Flush: egress PoP %d, want forced %d", nh.PoP, altPoP)
	}
}

// TestThroughVNSRTTFIBAgrees checks the FIB-backed RTT matches the
// analytic cold-potato RTT whenever both resolve — the data plane and
// the measurement model describe the same network.
func TestThroughVNSRTTFIBAgrees(t *testing.T) {
	pr, _, f := forwardingSetup(t, ForwardingConfig{})
	dp := NewDataPlane(pr, 11)
	lon := pr.Net.PoP("LON")
	eng := f.Engine("LON")
	checked := 0
	for i := 0; i < len(pr.Topo.Prefixes) && checked < 200; i += 5 {
		pi := &pr.Topo.Prefixes[i]
		nh, ok := eng.Lookup(pi.Prefix.Addr())
		if !ok {
			continue
		}
		gotMs, ok := dp.ThroughVNSRTTFIB(f, lon, pi)
		if !ok {
			t.Fatalf("%v: FIB RTT unresolvable despite FIB hit", pi.Prefix)
		}
		wantMs, ok := dp.ThroughVNSRTT(lon, pr.Net.PoPByID(nh.PoP), pi)
		if !ok {
			continue
		}
		if gotMs != wantMs {
			t.Errorf("%v: FIB RTT %.3f ms, analytic %.3f ms", pi.Prefix, gotMs, wantMs)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d prefixes checked", checked)
	}
}
