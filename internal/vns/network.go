// Package vns assembles the Video Network Service: eleven PoPs on four
// continents grouped into regional clusters, guaranteed-bandwidth L2
// links (regional meshes plus a few long-haul links), two egress routers
// per PoP, and BGP sessions to upstream transit providers and
// settlement-free peers drawn from the synthetic Internet.
//
// PoP numbering follows the paper's Figure 4: PoPs 3 and 5 are on the US
// east coast, PoP 7 is in Asia-Pacific, PoP 9 in Europe, and PoP 10 is
// London, the vantage point of the egress-selection analysis.
package vns

import (
	"fmt"
	"net/netip"
	"sync"

	"vns/internal/geo"
)

// ASN is the VNS autonomous system number (from the 2-octet private
// range, standing in for the deployment's public ASN).
const ASN uint16 = 65000

// RoutersPerPoP is the number of egress routers in each PoP; the paper
// reports over 20 routers across 11 PoPs.
const RoutersPerPoP = 2

// PoP is one point of presence.
type PoP struct {
	// ID is the 1-based paper-style PoP number.
	ID int
	// Code is the short site code used in Figure 11 (AMS, SJS, ...).
	Code string
	// Place is the PoP's city.
	Place geo.Place
	// Routers are the egress routers' BGP identifiers.
	Routers []netip.Addr
}

// Region returns the PoP's cluster region.
func (p *PoP) Region() geo.Region { return geo.PoPRegion(p.Place.Region) }

func (p *PoP) String() string { return fmt.Sprintf("PoP%d(%s)", p.ID, p.Code) }

// popSpec defines the deployment footprint. The cities are the ones the
// paper names (Figure 11 codes) plus Tokyo as the eleventh PoP.
var popSpec = []struct {
	id   int
	code string
	city string
}{
	{1, "OSL", "Oslo"},
	{2, "FRA", "Frankfurt"},
	{3, "ASH", "Ashburn"},
	{4, "SJS", "SanJose"},
	{5, "ATL", "Atlanta"},
	{6, "HK", "HongKong"},
	{7, "SIN", "Singapore"},
	{8, "SYD", "Sydney"},
	{9, "AMS", "Amsterdam"},
	{10, "LON", "London"},
	{11, "TOK", "Tokyo"},
}

// l2Spec lists the guaranteed-bandwidth L2 links: full meshes inside
// each regional cluster plus long-haul links whose termination points
// are chosen to avoid suboptimal internal routing. Singapore has the
// direct links to Australia, the USA and Europe the paper credits for
// its delay advantage.
var l2Spec = [][2]string{
	// EU cluster mesh: OSL FRA AMS LON.
	{"OSL", "FRA"}, {"OSL", "AMS"}, {"OSL", "LON"},
	{"FRA", "AMS"}, {"FRA", "LON"}, {"AMS", "LON"},
	// NA cluster mesh: ASH SJS ATL.
	{"ASH", "SJS"}, {"ASH", "ATL"}, {"SJS", "ATL"},
	// AP cluster mesh: HK SIN TOK.
	{"HK", "SIN"}, {"HK", "TOK"}, {"SIN", "TOK"},
	// Long-haul inter-cluster links.
	{"LON", "ASH"}, // transatlantic
	{"SJS", "TOK"}, // transpacific north
	{"SIN", "SJS"}, // Singapore-USA
	{"SIN", "AMS"}, // Singapore-Europe
	{"SIN", "SYD"}, // Singapore-Australia (OC cluster)
}

// Network is the assembled VNS.
type Network struct {
	PoPs []*PoP

	popByCode map[string]*PoP
	popByID   map[int]*PoP
	routerPoP map[netip.Addr]*PoP

	// mu guards the IGP state below: link failures (internal/health)
	// recompute it while forwarding-plane resolvers read it.
	mu sync.RWMutex
	// linkDown marks L2 links the control plane considers failed, keyed
	// by normalized (lower, higher) 0-based PoP index pair.
	linkDown map[[2]int]bool
	// links[i][j] is the one-way L2 propagation delay in ms between
	// PoPs i+1 and j+1, or +Inf when no direct link exists.
	igp [][]float64
	// nextHop[i][j] is the next PoP index on the shortest internal path.
	nextHop [][]int
}

// igpInf marks unreachable PoP pairs in the IGP matrix.
const igpInf = 1e18

// NewNetwork builds the eleven-PoP deployment.
func NewNetwork() *Network {
	n := &Network{
		popByCode: make(map[string]*PoP),
		popByID:   make(map[int]*PoP),
		routerPoP: make(map[netip.Addr]*PoP),
		linkDown:  make(map[[2]int]bool),
	}
	for _, s := range popSpec {
		p := &PoP{ID: s.id, Code: s.code, Place: geo.MustLookup(s.city)}
		for r := 1; r <= RoutersPerPoP; r++ {
			id := netip.AddrFrom4([4]byte{10, 0, byte(s.id), byte(r)})
			p.Routers = append(p.Routers, id)
			n.routerPoP[id] = p
		}
		n.PoPs = append(n.PoPs, p)
		n.popByCode[s.code] = p
		n.popByID[s.id] = p
	}
	n.computeIGP()
	return n
}

// PoP returns the PoP with the given Figure 11 code ("AMS").
func (n *Network) PoP(code string) *PoP {
	p, ok := n.popByCode[code]
	if !ok {
		panic("vns: unknown PoP code " + code)
	}
	return p
}

// PoPByID returns the PoP with the given paper number.
func (n *Network) PoPByID(id int) *PoP {
	p, ok := n.popByID[id]
	if !ok {
		panic(fmt.Sprintf("vns: unknown PoP id %d", id))
	}
	return p
}

// RouterPoP maps an egress router ID to its PoP.
func (n *Network) RouterPoP(router netip.Addr) (*PoP, bool) {
	p, ok := n.routerPoP[router]
	return p, ok
}

// PoPsInRegion returns PoPs in the given cluster region, in ID order.
func (n *Network) PoPsInRegion(r geo.Region) []*PoP {
	var out []*PoP
	for _, p := range n.PoPs {
		if p.Region() == r {
			out = append(out, p)
		}
	}
	return out
}

// HasL2Link reports whether a direct L2 link connects the two PoPs.
func (n *Network) HasL2Link(a, b *PoP) bool {
	for _, l := range l2Spec {
		if (l[0] == a.Code && l[1] == b.Code) || (l[0] == b.Code && l[1] == a.Code) {
			return true
		}
	}
	return false
}

// computeIGP runs all-pairs shortest paths (Floyd–Warshall; eleven
// nodes) over the up L2 links with one-way propagation delay as the
// metric. Callers must hold n.mu.
func (n *Network) computeIGP() {
	k := len(n.PoPs)
	dist := make([][]float64, k)
	next := make([][]int, k)
	for i := range dist {
		dist[i] = make([]float64, k)
		next[i] = make([]int, k)
		for j := range dist[i] {
			if i == j {
				dist[i][j] = 0
			} else {
				dist[i][j] = igpInf
			}
			next[i][j] = -1
		}
	}
	for _, l := range l2Spec {
		a, b := n.popByCode[l[0]], n.popByCode[l[1]]
		i, j := a.ID-1, b.ID-1
		if n.linkDown[linkKey(i, j)] {
			continue
		}
		d := geo.RTTMs(a.Place.Pos, b.Place.Pos) / 2 // one-way
		if d < dist[i][j] {
			dist[i][j], dist[j][i] = d, d
			next[i][j], next[j][i] = j, i
		}
	}
	for mid := 0; mid < k; mid++ {
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if dist[i][mid]+dist[mid][j] < dist[i][j] {
					dist[i][j] = dist[i][mid] + dist[mid][j]
					next[i][j] = next[i][mid]
				}
			}
		}
	}
	n.igp = dist
	n.nextHop = next
}

// linkKey normalizes a 0-based PoP index pair.
func linkKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// SetL2LinkState marks a direct L2 link up or down in the control
// plane's view and recomputes the IGP. It reports whether the state
// actually changed. This is the routing-level half of a failure: the
// failover controller calls it after liveness detection, while the
// fault injector downs the corresponding data-plane links directly.
func (n *Network) SetL2LinkState(a, b *PoP, up bool) bool {
	if !n.HasL2Link(a, b) {
		panic(fmt.Sprintf("vns: no L2 link %s-%s", a.Code, b.Code))
	}
	key := linkKey(a.ID-1, b.ID-1)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.linkDown[key] == !up {
		return false
	}
	if up {
		delete(n.linkDown, key)
	} else {
		n.linkDown[key] = true
	}
	n.computeIGP()
	return true
}

// L2LinkDown reports whether the control plane considers the direct
// link between two PoPs failed.
func (n *Network) L2LinkDown(a, b *PoP) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.linkDown[linkKey(a.ID-1, b.ID-1)]
}

// Reachable reports whether b can be reached from a over the up part of
// the L2 topology.
func (n *Network) Reachable(a, b *PoP) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.igp[a.ID-1][b.ID-1] < igpInf
}

// L2Links returns every direct L2 link as a PoP pair, in specification
// order (liveness monitoring runs one session per entry).
func (n *Network) L2Links() [][2]*PoP {
	out := make([][2]*PoP, 0, len(l2Spec))
	for _, l := range l2Spec {
		out = append(out, [2]*PoP{n.popByCode[l[0]], n.popByCode[l[1]]})
	}
	return out
}

// IGPMetricMs returns the one-way internal delay between two PoPs over
// the L2 topology; it is the IGP metric of the decision process. An
// unreachable pair (partition under failures) reports igpInf.
func (n *Network) IGPMetricMs(a, b *PoP) float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.igp[a.ID-1][b.ID-1]
}

// InternalPath returns the PoP sequence of the shortest internal path
// from a to b, inclusive of both endpoints, over the up L2 links. It
// returns nil when b is unreachable from a.
func (n *Network) InternalPath(a, b *PoP) []*PoP {
	if a == b {
		return []*PoP{a}
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	i, j := a.ID-1, b.ID-1
	if n.nextHop[i][j] == -1 {
		return nil
	}
	path := []*PoP{a}
	for i != j {
		i = n.nextHop[i][j]
		path = append(path, n.PoPs[i])
	}
	return path
}
