package vns

import (
	"net/netip"
	"sort"

	"vns/internal/bgp"
	"vns/internal/core"
	"vns/internal/geo"
	"vns/internal/loss"
	"vns/internal/rib"
	"vns/internal/topo"
)

// NeighborKind distinguishes transit from settlement-free peering.
type NeighborKind uint8

const (
	// Upstream is a transit provider VNS buys from.
	Upstream NeighborKind = iota
	// Peer is a settlement-free peer at an IXP.
	Peer
)

func (k NeighborKind) String() string {
	if k == Upstream {
		return "upstream"
	}
	return "peer"
}

// Neighbor is one external AS VNS has sessions with.
type Neighbor struct {
	// Index is the 1-based display ID of Figure 5: indexes 1..NumUpstreams
	// are upstreams (1 = the NA-heavy tier-1), the rest peers.
	Index    int
	ASN      uint16
	Kind     NeighborKind
	Sessions []*Session
	// View holds this neighbor's valley-free routes over the synthetic
	// Internet, which determine what it can export to VNS.
	View *topo.RouteView
}

// Session is one eBGP session between a VNS egress router and a
// neighbor at a PoP.
type Session struct {
	Neighbor *Neighbor
	PoP      *PoP
	// Router is the VNS-side egress router ID.
	Router netip.Addr
	// peerAddr uniquely identifies the remote end for tie-breaking.
	peerAddr netip.Addr
}

// ConnectConfig controls how VNS attaches to the synthetic Internet.
type ConnectConfig struct {
	// NumUpstreams is the number of transit providers (default 7, per
	// Figure 5).
	NumUpstreams int
	// NumPeers is the number of settlement-free peers. VNS peers openly
	// with any interested AS; the default of 26 gives the deployment's
	// open-peering posture while Figure 5 displays the top 20 neighbors
	// (7 upstreams + 13 peers) as the paper does.
	NumPeers int
	// Seed drives tie-breaking randomness in neighbor selection.
	Seed uint64
}

func (c ConnectConfig) withDefaults() ConnectConfig {
	if c.NumUpstreams == 0 {
		c.NumUpstreams = 7
	}
	if c.NumPeers == 0 {
		c.NumPeers = 26
	}
	return c
}

// Peering is the VNS control plane attached to a synthetic Internet:
// the neighbor set, all eBGP sessions, and the route candidates they
// yield.
type Peering struct {
	Net       *Network
	Topo      *topo.Topology
	Neighbors []*Neighbor

	candCache map[uint16][]Candidate
}

// Connect selects upstreams and peers from the topology and establishes
// sessions following the deployment's placement policy: upstreams where
// they have regional presence (with guaranteed transit coverage at every
// PoP), peers at every PoP in their home region.
func Connect(n *Network, t *topo.Topology, cfg ConnectConfig) *Peering {
	cfg = cfg.withDefaults()
	rng := loss.NewRNG(cfg.Seed ^ 0xa5a5)

	pr := &Peering{Net: n, Topo: t, candCache: make(map[uint16][]Candidate)}

	// Upstream selection: LTPs ranked by North-American presence so
	// neighbor 1 is the big US-based tier-1 (the paper's upstream 1 and
	// London's main upstream).
	var ltps []*topo.AS
	for _, asn := range t.ASNs() {
		if a := t.AS(asn); a.Type == topo.LTP {
			ltps = append(ltps, a)
		}
	}
	sort.SliceStable(ltps, func(i, j int) bool {
		ni, nj := naSites(ltps[i]), naSites(ltps[j])
		if ni != nj {
			return ni > nj
		}
		return ltps[i].ASN < ltps[j].ASN
	})
	if len(ltps) > cfg.NumUpstreams {
		ltps = ltps[:cfg.NumUpstreams]
	}
	for i, a := range ltps {
		nb := &Neighbor{Index: i + 1, ASN: a.ASN, Kind: Upstream, View: t.RoutesFrom(a.ASN)}
		pr.Neighbors = append(pr.Neighbors, nb)
	}

	// Peer selection: transit/content networks homed in PoP regions.
	// VNS peers openly with any interested AS, so the established peers
	// skew toward the networks worth peering with: large customer cones
	// (they absorb the most traffic at the IXP). Rank by cone size.
	type scored struct {
		a    *topo.AS
		cone float64
	}
	var peerPool []scored
	for _, asn := range t.ASNs() {
		a := t.AS(asn)
		if a.Type != topo.STP && a.Type != topo.CAHP {
			continue
		}
		if len(n.PoPsInRegion(geo.PoPRegion(a.Region))) == 0 {
			continue
		}
		peerPool = append(peerPool, scored{a, float64(t.CustomerConeSize(asn)) + rng.Float64()})
	}
	sort.Slice(peerPool, func(i, j int) bool { return peerPool[i].cone > peerPool[j].cone })
	for i := 0; i < cfg.NumPeers && i < len(peerPool); i++ {
		a := peerPool[i].a
		nb := &Neighbor{Index: cfg.NumUpstreams + i + 1, ASN: a.ASN, Kind: Peer, View: t.RoutesFrom(a.ASN)}
		pr.Neighbors = append(pr.Neighbors, nb)
	}

	pr.placeSessions(cfg)
	return pr
}

func naSites(a *topo.AS) int {
	c := 0
	for _, s := range a.Sites {
		if geo.PoPRegion(s.Region) == geo.RegionNA {
			c++
		}
	}
	return c
}

// placeSessions establishes eBGP sessions per the deployment policy.
func (pr *Peering) placeSessions(cfg ConnectConfig) {
	n := pr.Net
	for _, nb := range pr.Neighbors {
		a := pr.Topo.AS(nb.ASN)
		switch nb.Kind {
		case Upstream:
			// Session at every PoP in a region where the upstream has a
			// site. Upstream 1 additionally serves London as its main
			// upstream, the configuration behind the Figure 11 anomaly.
			regions := map[geo.Region]bool{}
			for _, s := range a.Sites {
				regions[geo.PoPRegion(s.Region)] = true
			}
			for _, p := range n.PoPs {
				if regions[p.Region()] || (nb.Index == 1 && p.Code == "LON") {
					pr.addSession(nb, p)
				}
			}
		case Peer:
			// "VNS usually peers with networks close to their geographic
			// location" and establishes peering at all shared sites.
			for _, p := range n.PoPsInRegion(geo.PoPRegion(a.Region)) {
				pr.addSession(nb, p)
			}
		}
	}
	// Transit coverage: every PoP needs at least two upstream sessions
	// so probes can always exit locally.
	for _, p := range n.PoPs {
		ups := 0
		for _, nb := range pr.Neighbors {
			if nb.Kind != Upstream {
				continue
			}
			for _, s := range nb.Sessions {
				if s.PoP == p {
					ups++
				}
			}
		}
		for i := 0; ups < 2 && i < len(pr.Neighbors); i++ {
			nb := pr.Neighbors[i]
			if nb.Kind != Upstream || pr.hasSession(nb, p) {
				continue
			}
			pr.addSession(nb, p)
			ups++
		}
	}
}

func (pr *Peering) addSession(nb *Neighbor, p *PoP) {
	// Spread sessions across the PoP's routers.
	router := p.Routers[len(nb.Sessions)%len(p.Routers)]
	s := &Session{
		Neighbor: nb,
		PoP:      p,
		Router:   router,
		peerAddr: netip.AddrFrom4([4]byte{172, byte(nb.Index), byte(p.ID), 1}),
	}
	nb.Sessions = append(nb.Sessions, s)
}

func (pr *Peering) hasSession(nb *Neighbor, p *PoP) bool {
	for _, s := range nb.Sessions {
		if s.PoP == p {
			return true
		}
	}
	return false
}

// Sessions returns all sessions in deterministic order.
func (pr *Peering) Sessions() []*Session {
	var out []*Session
	for _, nb := range pr.Neighbors {
		out = append(out, nb.Sessions...)
	}
	return out
}

// Candidate is one route offer for a destination: a session plus the
// AS-path length of the route the neighbor exports there.
type Candidate struct {
	Session *Session
	// PathLen is the received AS_PATH length (neighbor included).
	PathLen int
}

// Candidates returns the route offers for a destination origin AS,
// applying Gao–Rexford export policy: upstreams export their best route
// of any class, peers only customer routes. Results are cached per
// origin AS (all prefixes of an AS share them).
func (pr *Peering) Candidates(origin uint16) []Candidate {
	if c, ok := pr.candCache[origin]; ok {
		return c
	}
	var out []Candidate
	for _, nb := range pr.Neighbors {
		var hops int
		var ok bool
		switch nb.Kind {
		case Upstream:
			hops, ok = nb.View.ExportToCustomer(origin)
		case Peer:
			hops, ok = nb.View.ExportToPeer(origin)
		}
		if !ok {
			continue
		}
		for _, s := range nb.Sessions {
			out = append(out, Candidate{Session: s, PathLen: hops + 1})
		}
	}
	pr.candCache[origin] = out
	return out
}

// dummyPath backs the synthetic AS_PATH segments used for selection; the
// decision process only reads path length, so candidates share it.
var dummyPath = func() []uint16 {
	p := make([]uint16, 64)
	for i := range p {
		p[i] = 64000 + uint16(i)
	}
	return p
}()

// candidateRoute converts a candidate to a rib.Route as seen from the
// vantage PoP. lp == 0 means no LOCAL_PREF attribute (pre-geo routing).
// The AS_PATH is synthetic (only its length enters the decision
// process) and shares a read-only backing array across candidates.
func (pr *Peering) candidateRoute(vantage *PoP, c Candidate, prefix netip.Prefix, lp uint32) *rib.Route {
	pathLen := c.PathLen
	if pathLen > len(dummyPath) {
		pathLen = len(dummyPath)
	}
	// The IGP metric is the microsecond-scale internal delay; the PoP ID
	// breaks exact ties deterministically. Unreachable PoPs (partitions
	// under link failures) clamp to a huge finite metric so the route
	// ranks last instead of overflowing the conversion.
	igpMs := pr.Net.IGPMetricMs(vantage, c.Session.PoP)
	if igpMs > 1e9 {
		igpMs = 1e9
	}
	r := &rib.Route{
		Prefix:    prefix,
		EBGP:      c.Session.PoP == vantage,
		PeerAS:    c.Session.Neighbor.ASN,
		PeerID:    c.Session.Router,
		PeerAddr:  c.Session.peerAddr,
		IGPMetric: int(igpMs*1000) + c.Session.PoP.ID,
	}
	if pathLen > 0 {
		r.Attrs.ASPath = []bgp.ASPathSegment{{ASNs: dummyPath[:pathLen]}}
	}
	if lp > 0 {
		r.Attrs.LocalPref = lp
		r.Attrs.HasLocalPref = true
	}
	return r
}

// SelectHotPotato runs the pre-geo-routing decision process from the
// vantage PoP: default local preference everywhere, so selection falls
// to AS-path length, then eBGP-over-iBGP, then the IGP metric — classic
// hot-potato. It returns the winning candidate, or ok=false when the
// destination is unreachable.
func (pr *Peering) SelectHotPotato(vantage *PoP, cands []Candidate, prefix netip.Prefix) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := -1
	var bestRoute *rib.Route
	for i, c := range cands {
		r := pr.candidateRoute(vantage, c, prefix, 0)
		if bestRoute == nil || rib.Compare(r, bestRoute) < 0 {
			bestRoute, best = r, i
		}
	}
	return cands[best], true
}

// SelectGeo runs the post-geo-routing decision process: the GeoRR has
// assigned each candidate a distance-derived LOCAL_PREF, which dominates
// every later step, so the geographically closest egress (per the GeoIP
// database) wins network-wide. The vantage only matters for tie-breaks.
func (pr *Peering) SelectGeo(rr *core.GeoRR, vantage *PoP, cands []Candidate, prefix netip.Prefix) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := -1
	var bestRoute *rib.Route
	for i, c := range cands {
		dec := rr.Assign(c.Session.Router, prefix)
		r := pr.candidateRoute(vantage, c, prefix, dec.LocalPref)
		if bestRoute == nil || rib.Compare(r, bestRoute) < 0 {
			bestRoute, best = r, i
		}
	}
	return cands[best], true
}

// SelectFirstArrival models the hidden-route failure mode the paper
// mitigates with BGP best-external: without it, the first route the
// reflector learns gets the high geo preference and suppresses every
// alternative, so the egress is decided by arrival order, not
// geography. Arrival order is a deterministic hash of (prefix, session).
func (pr *Peering) SelectFirstArrival(cands []Candidate, prefix netip.Prefix) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	bestHash := uint64(0)
	best := -1
	addr := prefix.Addr().As4()
	for i, c := range cands {
		h := uint64(14695981039346656037)
		for _, b := range addr {
			h = (h ^ uint64(b)) * 1099511628211
		}
		h = (h ^ uint64(c.Session.Neighbor.Index)) * 1099511628211
		h = (h ^ uint64(c.Session.PoP.ID)) * 1099511628211
		if best == -1 || h < bestHash {
			bestHash, best = h, i
		}
	}
	return cands[best], true
}
