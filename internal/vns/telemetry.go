package vns

import (
	"net/netip"
	"strconv"

	"vns/internal/fib"
	"vns/internal/telemetry"
)

// This file wires the forwarding plane into the telemetry core. Two
// patterns are used, matching the hot-path budget: state the engines
// and links already keep atomically is re-exported through render-time
// collectors (no added per-packet cost, no double counting), while the
// media flow driver holds pre-resolved counter handles.

// registerTelemetry registers the forwarding plane's metric families in
// reg. Called once from NewForwarding.
func (f *Forwarding) registerTelemetry(reg *telemetry.Registry) {
	engineCounter := func(name, help string, get func(fib.EngineStats) uint64) {
		reg.RegisterFunc(name, help, telemetry.KindCounter, []string{"pop"},
			func(emit func([]string, float64)) {
				for _, p := range f.Peering.Net.PoPs {
					emit([]string{p.Code}, float64(get(f.engines[p.ID].Stats())))
				}
			})
	}
	engineCounter("fib_lookups_total", "FIB queries per PoP engine",
		func(s fib.EngineStats) uint64 { return s.Lookups })
	engineCounter("fib_forwarded_total", "packets with a route, per ingress PoP",
		func(s fib.EngineStats) uint64 { return s.Forwarded })
	engineCounter("fib_local_exits_total", "packets that exited through their ingress PoP",
		func(s fib.EngineStats) uint64 { return s.LocalExits })
	engineCounter("fib_relayed_total", "packets relayed across the internal fabric",
		func(s fib.EngineStats) uint64 { return s.Relayed })
	engineCounter("fib_no_route_total", "FIB lookups that found no route",
		func(s fib.EngineStats) uint64 { return s.NoRoute })
	engineCounter("fib_compiles_total", "published full trie builds per PoP",
		func(s fib.EngineStats) uint64 { return s.FIB.Compiles })
	engineCounter("fib_delta_compiles_total", "published incremental (delta-patched) tries per PoP",
		func(s fib.EngineStats) uint64 { return s.FIB.DeltaCompiles })
	engineCounter("fib_skipped_compiles_total", "flushes that resolved to no next-hop change",
		func(s fib.EngineStats) uint64 { return s.FIB.SkippedCompiles })

	engineGauge := func(name, help string, get func(fib.EngineStats) float64) {
		reg.RegisterFunc(name, help, telemetry.KindGauge, []string{"pop"},
			func(emit func([]string, float64)) {
				for _, p := range f.Peering.Net.PoPs {
					emit([]string{p.Code}, get(f.engines[p.ID].Stats()))
				}
			})
	}
	engineGauge("fib_generation_current", "generation of the published FIB",
		func(s fib.EngineStats) float64 { return float64(s.FIB.Generation) })
	engineGauge("fib_prefixes_current", "prefixes installed in the published FIB",
		func(s fib.EngineStats) float64 { return float64(s.FIB.Prefixes) })

	reg.RegisterFunc("netsim_link_tx_packets_total", "packets forwarded per fabric link",
		telemetry.KindCounter, []string{"link"}, func(emit func([]string, float64)) {
			for _, l := range f.fabric.Links() {
				emit([]string{l.Name}, float64(l.Stats().TxPackets))
			}
		})
	reg.RegisterFunc("netsim_link_tx_bytes_total", "bytes forwarded per fabric link",
		telemetry.KindCounter, []string{"link"}, func(emit func([]string, float64)) {
			for _, l := range f.fabric.Links() {
				emit([]string{l.Name}, float64(l.Stats().TxBytes))
			}
		})
	reg.RegisterFunc("netsim_link_drops_total", "drops per fabric link, partitioned by cause",
		telemetry.KindCounter, []string{"cause", "link"}, func(emit func([]string, float64)) {
			for _, l := range f.fabric.Links() {
				st := l.Stats()
				emit([]string{"loss", l.Name}, float64(st.DropsLoss))
				emit([]string{"queue", l.Name}, float64(st.DropsQueue))
				emit([]string{"admin", l.Name}, float64(st.DropsAdmin))
			}
		})

	f.mediaStreams = reg.Counter("media_streams_total", "media flows played through the forwarding plane")
	f.mediaSent = reg.Counter("media_packets_sent_total", "RTP packets injected at ingress")
	f.mediaReceived = reg.Counter("media_packets_received_total", "RTP packets delivered at egress")
	f.mediaLost = reg.Counter("media_packets_lost_total", "RTP packets dropped in the fabric or unroutable")
}

// TraceRoute records the cross-layer decision chain for one destination
// as seen from a vantage PoP: the GeoIP lookup, the control-plane (RIB)
// decision, the compiled-FIB lookup, and the internal fabric hops the
// packet would take. It returns the assigned trace ID (0 when the
// forwarding plane has no tracer). Spans carry the tracer's current
// virtual time; the trace is a decision snapshot, not a packet flight.
func (f *Forwarding) TraceRoute(vantage *PoP, dst netip.Addr) telemetry.TraceID {
	tr := f.tracer
	if tr == nil {
		return 0
	}
	id := tr.StartTrace()
	now := tr.Now()
	tr.Record(id, "trace", "route", now, now,
		telemetry.String("vantage", vantage.Code), telemetry.String("dst", dst.String()))

	rec, geoOK := f.RR.DB().Lookup(dst)
	if geoOK {
		tr.Record(id, "geoip", "lookup", now, now,
			telemetry.String("prefix", rec.Prefix.String()),
			telemetry.String("country", rec.Country))
	} else {
		tr.Record(id, "geoip", "lookup", now, now, telemetry.String("result", "miss"))
	}

	if geoOK {
		if nh, ok := f.Resolve(vantage, rec.Prefix); ok {
			tr.Record(id, "rib", "decision", now, now,
				telemetry.Int("egress_pop", nh.PoP),
				telemetry.String("router", nh.Router.String()))
		} else {
			tr.Record(id, "rib", "decision", now, now, telemetry.String("result", "no_route"))
		}
	}

	eng := f.engines[vantage.ID]
	nh, ok := eng.Lookup(dst)
	gen := eng.Publisher().Current().Generation()
	if !ok {
		tr.Record(id, "fib", "lookup", now, now,
			telemetry.Uint("generation", gen), telemetry.String("result", "no_route"))
		return id
	}
	tr.Record(id, "fib", "lookup", now, now,
		telemetry.Uint("generation", gen),
		telemetry.Int("egress_pop", nh.PoP),
		telemetry.String("router", nh.Router.String()))

	if path := f.fabric.Path(vantage.ID, nh.PoP); path != nil {
		for i, l := range path.Links {
			tr.Record(id, "netsim", "hop", now, now,
				telemetry.Int("hop", i), telemetry.String("link", l.Name))
		}
	}
	return id
}

// traceStreamStart opens a trace for one media flow and returns its ID
// (0 without a tracer).
func (f *Forwarding) traceStreamStart(ingress *PoP, dst netip.Addr, packets int) telemetry.TraceID {
	tr := f.tracer
	if tr == nil {
		return 0
	}
	id := tr.StartTrace()
	tr.Event(id, "media", "stream_start",
		telemetry.String("ingress", ingress.Code),
		telemetry.String("dst", dst.String()),
		telemetry.String("packets", strconv.Itoa(packets)))
	return id
}
