package vns

import (
	"net/netip"
	"testing"

	"vns/internal/core"
	"vns/internal/geo"
	"vns/internal/geoip"
	"vns/internal/topo"
)

func testSetup(t *testing.T) (*Network, *Peering) {
	t.Helper()
	n := NewNetwork()
	tp := topo.Generate(topo.GenConfig{Seed: 3, NumAS: 800, NumLTP: 10})
	pr := Connect(n, tp, ConnectConfig{Seed: 1})
	return n, pr
}

func TestNetworkFootprint(t *testing.T) {
	n := NewNetwork()
	if len(n.PoPs) != 11 {
		t.Fatalf("PoPs = %d, want 11", len(n.PoPs))
	}
	// Paper anchors: PoPs 3 and 5 on the US east coast, 7 in AP, 9 in
	// EU, 10 is London.
	if n.PoPByID(3).Code != "ASH" || n.PoPByID(5).Code != "ATL" {
		t.Error("PoPs 3/5 should be US east coast")
	}
	if n.PoPByID(7).Region() != geo.RegionAP {
		t.Error("PoP 7 should be AP")
	}
	if n.PoPByID(9).Region() != geo.RegionEU {
		t.Error("PoP 9 should be EU")
	}
	if n.PoPByID(10).Code != "LON" {
		t.Error("PoP 10 should be London")
	}
	routers := 0
	for _, p := range n.PoPs {
		routers += len(p.Routers)
	}
	if routers <= 20 {
		t.Errorf("routers = %d, paper says over 20", routers)
	}
}

func TestNetworkClusters(t *testing.T) {
	n := NewNetwork()
	want := map[geo.Region]int{geo.RegionEU: 4, geo.RegionNA: 3, geo.RegionAP: 3, geo.RegionOC: 1}
	for r, count := range want {
		if got := len(n.PoPsInRegion(r)); got != count {
			t.Errorf("region %v has %d PoPs, want %d", r, got, count)
		}
	}
	// Intra-cluster full mesh.
	for _, r := range []geo.Region{geo.RegionEU, geo.RegionNA, geo.RegionAP} {
		pops := n.PoPsInRegion(r)
		for i, a := range pops {
			for _, b := range pops[i+1:] {
				if !n.HasL2Link(a, b) {
					t.Errorf("cluster %v: no L2 link %s-%s", r, a.Code, b.Code)
				}
			}
		}
	}
	// Not fully meshed globally.
	if n.HasL2Link(n.PoP("OSL"), n.PoP("SYD")) {
		t.Error("OSL-SYD should not be a direct link")
	}
}

func TestIGPMetricProperties(t *testing.T) {
	n := NewNetwork()
	for _, a := range n.PoPs {
		for _, b := range n.PoPs {
			d := n.IGPMetricMs(a, b)
			if a == b && d != 0 {
				t.Errorf("self distance %s = %v", a.Code, d)
			}
			if a != b && d <= 0 {
				t.Errorf("distance %s-%s = %v", a.Code, b.Code, d)
			}
			if d > 1e6 {
				t.Errorf("PoPs %s-%s disconnected", a.Code, b.Code)
			}
			if got := n.IGPMetricMs(b, a); got != d {
				t.Errorf("IGP asymmetric %s-%s", a.Code, b.Code)
			}
		}
	}
	// Triangle inequality via Floyd-Warshall is structural; spot-check a
	// multi-hop path: OSL->SYD must go via SIN.
	path := n.InternalPath(n.PoP("OSL"), n.PoP("SYD"))
	if len(path) < 3 {
		t.Errorf("OSL->SYD path too short: %v", path)
	}
	if path[len(path)-2].Code != "SIN" {
		t.Errorf("OSL->SYD should transit SIN, got %v", path)
	}
	if got := n.InternalPath(n.PoP("AMS"), n.PoP("AMS")); len(got) != 1 {
		t.Errorf("self path = %v", got)
	}
}

func TestConnectNeighborShape(t *testing.T) {
	_, pr := testSetup(t)
	ups, peers := 0, 0
	for _, nb := range pr.Neighbors {
		switch nb.Kind {
		case Upstream:
			ups++
		case Peer:
			peers++
		}
		if len(nb.Sessions) == 0 {
			t.Errorf("neighbor %d has no sessions", nb.Index)
		}
	}
	if ups != 7 || peers != 26 {
		t.Errorf("ups/peers = %d/%d, want 7 upstreams and 26 open peers", ups, peers)
	}
	// Indexes 1..7 are upstreams (paper's figure 5 layout).
	for _, nb := range pr.Neighbors {
		if nb.Index <= 7 && nb.Kind != Upstream {
			t.Errorf("neighbor %d should be an upstream", nb.Index)
		}
		if nb.Index > 7 && nb.Kind != Peer {
			t.Errorf("neighbor %d should be a peer", nb.Index)
		}
	}
}

func TestUpstream1IsNAHeavyAndServesLondon(t *testing.T) {
	_, pr := testSetup(t)
	u1 := pr.Neighbors[0]
	if u1.Index != 1 || u1.Kind != Upstream {
		t.Fatal("first neighbor should be upstream 1")
	}
	hasLON := false
	for _, s := range u1.Sessions {
		if s.PoP.Code == "LON" {
			hasLON = true
		}
	}
	if !hasLON {
		t.Error("upstream 1 must serve London (the paper's anomaly config)")
	}
}

func TestEveryPoPHasTransit(t *testing.T) {
	_, pr := testSetup(t)
	counts := map[string]int{}
	for _, s := range pr.Sessions() {
		if s.Neighbor.Kind == Upstream {
			counts[s.PoP.Code]++
		}
	}
	for _, p := range pr.Net.PoPs {
		if counts[p.Code] < 2 {
			t.Errorf("PoP %s has %d upstream sessions, want >= 2", p.Code, counts[p.Code])
		}
	}
}

func TestPeersAreRegional(t *testing.T) {
	_, pr := testSetup(t)
	for _, nb := range pr.Neighbors {
		if nb.Kind != Peer {
			continue
		}
		home := geo.PoPRegion(pr.Topo.AS(nb.ASN).Region)
		for _, s := range nb.Sessions {
			if s.PoP.Region() != home {
				t.Errorf("peer %d (region %v) has session at %s (%v)", nb.Index, home, s.PoP.Code, s.PoP.Region())
			}
		}
	}
}

func TestCandidatesCoverage(t *testing.T) {
	_, pr := testSetup(t)
	missing := 0
	for _, asn := range pr.Topo.ASNs() {
		if len(pr.Candidates(asn)) == 0 {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d ASes unreachable from VNS", missing)
	}
	// Cache hit returns the same slice.
	a := pr.Candidates(pr.Topo.ASNs()[0])
	b := pr.Candidates(pr.Topo.ASNs()[0])
	if len(a) != len(b) {
		t.Error("candidate cache inconsistent")
	}
}

func TestSelectHotPotatoPrefersLocalEBGP(t *testing.T) {
	_, pr := testSetup(t)
	lon := pr.Net.PoP("LON")
	// Find a destination with a session at LON offering the (joint)
	// shortest path; hot potato must pick a local session then.
	prefixes := pr.Topo.Prefixes
	localWins, total := 0, 0
	for i := range prefixes {
		pi := &prefixes[i]
		cands := pr.Candidates(pi.Origin)
		if len(cands) == 0 {
			continue
		}
		best, ok := pr.SelectHotPotato(lon, cands, pi.Prefix)
		if !ok {
			continue
		}
		total++
		shortest := 1 << 30
		shortestLocal := 1 << 30
		for _, c := range cands {
			if c.PathLen < shortest {
				shortest = c.PathLen
			}
			if c.Session.PoP == lon && c.PathLen < shortestLocal {
				shortestLocal = c.PathLen
			}
		}
		if shortestLocal == shortest {
			// A local candidate ties for shortest: eBGP-over-iBGP must
			// keep traffic local.
			if best.Session.PoP != lon {
				t.Fatalf("prefix %v: local tie but egress %s", pi.Prefix, best.Session.PoP.Code)
			}
			localWins++
		} else if best.PathLen > shortest {
			t.Fatalf("prefix %v: selected path %d > shortest %d", pi.Prefix, best.PathLen, shortest)
		}
	}
	if total == 0 || localWins == 0 {
		t.Fatalf("degenerate test: total=%d localWins=%d", total, localWins)
	}
}

func TestSelectGeoPicksClosestPoP(t *testing.T) {
	_, pr := testSetup(t)
	// Perfect GeoIP database: selection must pick the session whose PoP
	// is geographically closest to the prefix, among sessions that have
	// a route.
	db := geoip.New()
	for i := range pr.Topo.Prefixes {
		pi := &pr.Topo.Prefixes[i]
		db.Insert(geoip.Record{Prefix: pi.Prefix, Pos: pi.Loc, Country: pi.Country, Region: pi.Region})
	}
	rr := core.New(core.Config{DB: db})
	for _, p := range pr.Net.PoPs {
		for _, r := range p.Routers {
			rr.AddEgress(core.Egress{ID: r, Pos: p.Place.Pos, PoP: p.Code})
		}
	}
	lon := pr.Net.PoP("LON")
	checked := 0
	for i := 0; i < len(pr.Topo.Prefixes) && checked < 300; i += 7 {
		pi := &pr.Topo.Prefixes[i]
		cands := pr.Candidates(pi.Origin)
		if len(cands) == 0 {
			continue
		}
		best, ok := pr.SelectGeo(rr, lon, cands, pi.Prefix)
		if !ok {
			continue
		}
		checked++
		// No candidate PoP may be meaningfully closer than the winner.
		bestDist := geo.DistanceKm(best.Session.PoP.Place.Pos, pi.Loc)
		for _, c := range cands {
			d := geo.DistanceKm(c.Session.PoP.Place.Pos, pi.Loc)
			if d < bestDist-1 {
				t.Fatalf("prefix %v: egress %s at %.0f km but %s at %.0f km available",
					pi.Prefix, best.Session.PoP.Code, bestDist, c.Session.PoP.Code, d)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d prefixes checked", checked)
	}
}

func TestSelectFirstArrivalDeterministic(t *testing.T) {
	_, pr := testSetup(t)
	pi := &pr.Topo.Prefixes[0]
	cands := pr.Candidates(pi.Origin)
	a, ok1 := pr.SelectFirstArrival(cands, pi.Prefix)
	b, ok2 := pr.SelectFirstArrival(cands, pi.Prefix)
	if !ok1 || !ok2 || a != b {
		t.Error("first-arrival selection not deterministic")
	}
}

func TestSelectEmptyCandidates(t *testing.T) {
	_, pr := testSetup(t)
	lon := pr.Net.PoP("LON")
	if _, ok := pr.SelectHotPotato(lon, nil, netip.Prefix{}); ok {
		t.Error("empty candidates should not select")
	}
	if _, ok := pr.SelectFirstArrival(nil, netip.Prefix{}); ok {
		t.Error("empty candidates should not select")
	}
}

func TestDataPlaneExternalRTT(t *testing.T) {
	_, pr := testSetup(t)
	dp := NewDataPlane(pr, 99)
	ams := pr.Net.PoP("AMS")
	syd := pr.Net.PoP("SYD")
	// Pick an EU prefix; AMS must be much closer than SYD.
	for i := range pr.Topo.Prefixes {
		pi := &pr.Topo.Prefixes[i]
		if pi.Region != geo.RegionEU {
			continue
		}
		amsRTT, ok1 := dp.ExternalRTT(ams, pi)
		sydRTT, ok2 := dp.ExternalRTT(syd, pi)
		if !ok1 || !ok2 {
			t.Fatal("unreachable EU prefix")
		}
		if amsRTT >= sydRTT {
			t.Fatalf("EU prefix: AMS RTT %.0f >= SYD RTT %.0f", amsRTT, sydRTT)
		}
		return
	}
	t.Fatal("no EU prefix found")
}

func TestThroughVNSUsesInternalLeg(t *testing.T) {
	_, pr := testSetup(t)
	dp := NewDataPlane(pr, 99)
	ams, sin := pr.Net.PoP("AMS"), pr.Net.PoP("SIN")
	var pi *topo.PrefixInfo
	for i := range pr.Topo.Prefixes {
		if pr.Topo.Prefixes[i].Region == geo.RegionAP {
			pi = &pr.Topo.Prefixes[i]
			break
		}
	}
	if pi == nil {
		t.Fatal("no AP prefix")
	}
	through, ok := dp.ThroughVNSRTT(ams, sin, pi)
	if !ok {
		t.Fatal("unreachable")
	}
	internal := dp.InternalRTTMs(ams, sin)
	if through <= internal {
		t.Errorf("through-VNS RTT %.0f should exceed internal leg %.0f", through, internal)
	}
	if internal <= 0 {
		t.Error("internal RTT should be positive")
	}
}

func TestEntryPoPFollowsGeography(t *testing.T) {
	_, pr := testSetup(t)
	// Count how many client ASes in each region land at a PoP in the
	// matching PoP region; the diagonal must dominate (Figure 7).
	match, total := 0, 0
	for _, asn := range pr.Topo.ASNs() {
		a := pr.Topo.AS(asn)
		entry := pr.EntryPoP(asn)
		if entry == nil {
			continue
		}
		total++
		if entry.Region() == geo.PoPRegion(a.Region) {
			match++
		}
	}
	if total < 100 {
		t.Fatalf("too few entries resolved: %d", total)
	}
	if frac := float64(match) / float64(total); frac < 0.7 {
		t.Errorf("only %.0f%% of traffic follows geography", frac*100)
	}
}

func TestEntryPoPUnknownClient(t *testing.T) {
	_, pr := testSetup(t)
	if pr.EntryPoP(64999) != nil {
		t.Error("unknown client should have no entry PoP")
	}
}

func TestPoPLookupPanics(t *testing.T) {
	n := NewNetwork()
	defer func() {
		if recover() == nil {
			t.Error("unknown PoP code should panic")
		}
	}()
	n.PoP("XXX")
}

func BenchmarkCandidates(b *testing.B) {
	n := NewNetwork()
	tp := topo.Generate(topo.GenConfig{Seed: 3, NumAS: 2000})
	pr := Connect(n, tp, ConnectConfig{})
	asns := tp.ASNs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Candidates(asns[i%len(asns)])
	}
}
