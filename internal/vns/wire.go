package vns

import (
	"fmt"
	"net/netip"
	"sync"

	"vns/internal/bgp"
	"vns/internal/core"
	"vns/internal/topo"
)

// WireDeployment runs the VNS control plane over real BGP/TCP: the geo
// route reflector listening for sessions plus one in-process speaker per
// egress router, each announcing its best-external routes. cmd/vnsd is a
// thin wrapper over this; tests drive it directly.
type WireDeployment struct {
	RR  *core.RRServer
	dp  *DataPlane
	net *Network

	mu       sync.Mutex
	sessions []*bgp.Session
	counts   map[netip.Addr]int
}

// StartWireDeployment launches the reflector on listenAddr.
func StartWireDeployment(listenAddr string, dp *DataPlane, rr *core.GeoRR, rrID netip.Addr) (*WireDeployment, error) {
	srv, err := core.NewRRServer(listenAddr, rr, ASN, rrID)
	if err != nil {
		return nil, err
	}
	return &WireDeployment{
		RR:     srv,
		dp:     dp,
		net:    dp.Peering.Net,
		counts: make(map[netip.Addr]int),
	}, nil
}

// Close tears down every session and the reflector.
func (w *WireDeployment) Close() error {
	w.mu.Lock()
	sessions := w.sessions
	w.sessions = nil
	w.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
	return w.RR.Close()
}

// AnnounceCounts returns, per egress router, how many routes it
// announced.
func (w *WireDeployment) AnnounceCounts() map[netip.Addr]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[netip.Addr]int, len(w.counts))
	//vnslint:maprange map-to-map snapshot copy; destination is a map, so order cannot escape
	for k, v := range w.counts {
		out[k] = v
	}
	return out
}

// ConnectEgresses dials one BGP session per egress router and announces
// each router's best-external route for up to maxPrefixes prefixes
// (0 = all). It blocks until every announcement has been written.
func (w *WireDeployment) ConnectEgresses(maxPrefixes int) error {
	updatesByRouter := w.buildAnnouncements(maxPrefixes)

	for _, pop := range w.net.PoPs {
		for _, router := range pop.Routers {
			sess, err := core.DialRR(w.RR.Addr(), ASN, router)
			if err != nil {
				return fmt.Errorf("vns: egress %s/%v: %w", pop.Code, router, err)
			}
			w.mu.Lock()
			w.sessions = append(w.sessions, sess)
			w.mu.Unlock()
			// Drain reflected routes for the session's lifetime.
			go func() {
				for range sess.Updates() {
				}
			}()
			for _, u := range updatesByRouter[router] {
				if err := sess.SendUpdate(u); err != nil {
					return fmt.Errorf("vns: egress %s/%v send: %w", pop.Code, router, err)
				}
			}
			w.mu.Lock()
			w.counts[router] = len(updatesByRouter[router])
			w.mu.Unlock()
		}
	}
	return nil
}

// buildAnnouncements computes, per egress router, the best-external
// routes it would advertise into iBGP: for every prefix, each PoP's
// locally best session contributes one announcement from its router.
func (w *WireDeployment) buildAnnouncements(maxPrefixes int) map[netip.Addr][]bgp.Update {
	out := make(map[netip.Addr][]bgp.Update)
	count := 0
	for i := range w.dp.Peering.Topo.Prefixes {
		if maxPrefixes > 0 && count >= maxPrefixes {
			break
		}
		pi := &w.dp.Peering.Topo.Prefixes[i]
		for _, pop := range w.net.PoPs {
			c, ok := w.dp.LocalEgressSession(pop, pi.Origin)
			if !ok {
				continue
			}
			out[c.Session.Router] = append(out[c.Session.Router], bgp.Update{
				Attrs: bgp.Attrs{
					ASPath:  []bgp.ASPathSegment{{ASNs: wirePath(c, pi.Origin)}},
					NextHop: c.Session.Router,
				},
				NLRI: []netip.Prefix{pi.Prefix},
			})
		}
		count++
	}
	return out
}

// wirePath returns the AS path the neighbor's announcement carries:
// the neighbor itself followed by its real valley-free path to the
// origin AS. If path reconstruction fails (it should not for an
// exportable route), a synthetic filler of the right length keeps the
// announcement well-formed.
func wirePath(c Candidate, origin uint16) []uint16 {
	nb := c.Session.Neighbor
	if rest, ok := nb.View.PathTo(origin); ok {
		return append([]uint16{nb.ASN}, rest...)
	}
	path := make([]uint16, 0, c.PathLen)
	path = append(path, nb.ASN)
	for len(path) < c.PathLen {
		path = append(path, uint16(64000+len(path)))
	}
	return path
}

// prefixInfoFor resolves ground truth for a prefix (helper for tests).
func (w *WireDeployment) prefixInfoFor(p netip.Prefix) (*topo.PrefixInfo, bool) {
	return w.dp.Peering.Topo.PrefixInfoFor(p)
}
