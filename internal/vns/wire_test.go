package vns

import (
	"net/netip"
	"testing"
	"time"

	"vns/internal/core"
	"vns/internal/geo"
	"vns/internal/geoip"
	"vns/internal/topo"
)

func wireDeployment(t *testing.T, maxPrefixes int) (*WireDeployment, *Peering) {
	t.Helper()
	n := NewNetwork()
	tp := topo.Generate(topo.GenConfig{Seed: 5, NumAS: 300})
	pr := Connect(n, tp, ConnectConfig{Seed: 5})
	dp := NewDataPlane(pr, 5)

	db := geoip.New()
	for i := range tp.Prefixes {
		pi := &tp.Prefixes[i]
		if err := db.Insert(geoip.Record{Prefix: pi.Prefix, Pos: pi.Loc, Country: pi.Country, Region: pi.Region}); err != nil {
			t.Fatal(err)
		}
	}
	rr := core.New(core.Config{DB: db, ClusterID: netip.MustParseAddr("10.0.0.100")})
	for _, p := range n.PoPs {
		for _, r := range p.Routers {
			rr.AddEgress(core.Egress{ID: r, Pos: p.Place.Pos, PoP: p.Code})
		}
	}

	w, err := StartWireDeployment("127.0.0.1:0", dp, rr, netip.MustParseAddr("10.0.0.100"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	if err := w.ConnectEgresses(maxPrefixes); err != nil {
		t.Fatal(err)
	}
	return w, pr
}

func TestWireDeploymentAllRoutersConnect(t *testing.T) {
	w, pr := wireDeployment(t, 50)
	routers := 0
	for _, p := range pr.Net.PoPs {
		routers += len(p.Routers)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && w.RR.NumPeers() < routers {
		time.Sleep(20 * time.Millisecond)
	}
	if got := w.RR.NumPeers(); got != routers {
		t.Fatalf("peers = %d, want %d", got, routers)
	}
}

func TestWireDeploymentRoutesConvergeToGeo(t *testing.T) {
	w, pr := wireDeployment(t, 60)
	// Wait until the reflector has routes for 60 prefixes.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && w.RR.NumRoutes() < 60 {
		time.Sleep(20 * time.Millisecond)
	}
	if got := w.RR.NumRoutes(); got < 60 {
		t.Fatalf("routes = %d, want >= 60", got)
	}

	// For a sample of prefixes, the wire-level best must exit at (or
	// geographically very near) the PoP the in-process geo selection
	// picks — the two code paths implement the same mechanism.
	checked := 0
	for i := 0; i < 60; i++ {
		pi := &pr.Topo.Prefixes[i]
		best := w.RR.Best(pi.Prefix)
		if best == nil {
			continue
		}
		pop, ok := pr.Net.RouterPoP(best.PeerID)
		if !ok {
			t.Fatalf("best route from unknown router %v", best.PeerID)
		}
		// The wire winner's distance to the prefix must be within a
		// whisker of the best candidate PoP's distance.
		cands := pr.Candidates(pi.Origin)
		bestDist := 1e18
		for _, c := range cands {
			if d := geo.DistanceKm(c.Session.PoP.Place.Pos, pi.Loc); d < bestDist {
				bestDist = d
			}
		}
		got := geo.DistanceKm(pop.Place.Pos, pi.Loc)
		if got > bestDist+50 {
			t.Fatalf("prefix %v: wire egress %s at %.0f km, best possible %.0f km",
				pi.Prefix, pop.Code, got, bestDist)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d prefixes checked", checked)
	}
}

func TestWireDeploymentAnnounceCounts(t *testing.T) {
	w, _ := wireDeployment(t, 40)
	counts := w.AnnounceCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	// 40 prefixes x 11 PoPs' best-external announcements.
	if total != 40*11 {
		t.Errorf("total announcements = %d, want %d", total, 440)
	}
}

func TestWireDeploymentPrefixInfo(t *testing.T) {
	w, pr := wireDeployment(t, 5)
	pi, ok := w.prefixInfoFor(pr.Topo.Prefixes[0].Prefix)
	if !ok || pi.Origin != pr.Topo.Prefixes[0].Origin {
		t.Error("prefixInfoFor broken")
	}
	if _, ok := w.prefixInfoFor(netip.MustParsePrefix("192.0.2.0/24")); ok {
		t.Error("unknown prefix should miss")
	}
}
