#!/usr/bin/env bash
# Benchmark regression diff (ISSUE 8 satellite): compare a fresh
# bench_snapshot.sh run against the most recent committed BENCH_*.json
# and report per-benchmark deltas with SOFT thresholds — noisy shared
# runners make hard ns/op gates flaky, so this script warns at modest
# regressions and only exits nonzero past a large one. The per-package
# BudgetTest gates (telemetry/adaptive/flowsim) remain the hard ceiling;
# this diff tracks the trajectory between snapshots.
#
#   scripts/bench_diff.sh                 # baseline = newest BENCH_*.json, current = fresh run
#   scripts/bench_diff.sh old.json        # explicit baseline, fresh current
#   scripts/bench_diff.sh old.json new.json
#
# Environment:
#   BENCH_WARN_PCT  ns/op regression that prints a warning   (default 10)
#   BENCH_FAIL_PCT  ns/op regression that fails the script   (default 50)
#   BENCH_TIME      passed through to bench_snapshot.sh
#
# allocs/op is held exactly: any increase over baseline is a failure,
# because the hot paths are asserted allocation-free by design (see
# hotalloc in DESIGN.md) and an alloc count cannot be "noisy".
set -euo pipefail
cd "$(dirname "$0")/.."

warn_pct=${BENCH_WARN_PCT:-10}
fail_pct=${BENCH_FAIL_PCT:-50}

old=${1:-}
if [ -z "$old" ]; then
  old=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
  if [ -z "$old" ]; then
    echo "bench_diff: no committed BENCH_*.json baseline found" >&2
    exit 2
  fi
fi

new=${2:-}
if [ -z "$new" ]; then
  new=$(mktemp /tmp/bench_new.XXXXXX.json)
  trap 'rm -f "$new"' EXIT
  scripts/bench_snapshot.sh "$new" >&2
fi

python3 - "$old" "$new" "$warn_pct" "$fail_pct" <<'PY'
import json, sys

old_path, new_path, warn_pct, fail_pct = sys.argv[1], sys.argv[2], float(sys.argv[3]), float(sys.argv[4])
old = json.load(open(old_path))
new = json.load(open(new_path))

def index(snap):
    return {(b["package"], b["name"]): b for b in snap["benchmarks"]}

old_ix, new_ix = index(old), index(new)
failed = False
print(f"baseline {old_path} ({old.get('date','?')})  vs  current {new_path} ({new.get('date','?')})")
print(f"{'benchmark':44} {'old ns/op':>12} {'new ns/op':>12} {'delta':>8}  verdict")
for key in [k for k in new_ix if k in old_ix]:
    o, n = old_ix[key], new_ix[key]
    name = f"{key[0].split('/')[-1]}/{key[1]}"
    delta = 100.0 * (n["ns_per_op"] - o["ns_per_op"]) / o["ns_per_op"] if o["ns_per_op"] else 0.0
    verdict = "ok"
    if delta > fail_pct:
        verdict, failed = f"FAIL (> {fail_pct:g}%)", True
    elif delta > warn_pct:
        verdict = f"warn (> {warn_pct:g}%)"
    elif delta < -warn_pct:
        verdict = "improved"
    if n["allocs_per_op"] > o["allocs_per_op"]:
        verdict, failed = f"FAIL (allocs {o['allocs_per_op']} -> {n['allocs_per_op']})", True
    print(f"{name:44} {o['ns_per_op']:12.2f} {n['ns_per_op']:12.2f} {delta:+7.1f}%  {verdict}")

for key in [k for k in old_ix if k not in new_ix]:
    print(f"{key[0]}/{key[1]}: dropped from snapshot (schema change?)")
    failed = True
for key in [k for k in new_ix if k not in old_ix]:
    print(f"{key[0]}/{key[1]}: new benchmark (no baseline)")

sys.exit(1 if failed else 0)
PY
