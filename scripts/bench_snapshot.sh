#!/usr/bin/env bash
# Benchmark snapshot runner (ROADMAP item 5): run the canonical
# benchmark set and write a schema-stable BENCH_<date>.json so the perf
# trajectory is recorded in-tree, PR over PR. The benchmark list is
# fixed here — adding a bench is a deliberate schema change — and the
# output orders entries by that list, so snapshots diff cleanly.
#
#   scripts/bench_snapshot.sh                # writes BENCH_$(date +%F).json
#   scripts/bench_snapshot.sh /tmp/out.json  # explicit output path
#   BENCH_DATE=2026-08-08 scripts/bench_snapshot.sh
#
# Compare two snapshots with e.g.
#   join <(jq -r '.benchmarks[]|"\(.package)/\(.name) \(.ns_per_op)"' old) \
#        <(jq -r '.benchmarks[]|"\(.package)/\(.name) \(.ns_per_op)"' new)
set -euo pipefail
cd "$(dirname "$0")/.."

date_tag=${BENCH_DATE:-$(date +%Y-%m-%d)}
out=${1:-BENCH_${date_tag}.json}
benchtime=${BENCH_TIME:-1s}

# The canonical set: the flowsim hot paths, the aggregate link transit
# they ride on, FIB lookup/compile plus the single-prefix delta patch,
# RIB batched churn, end-to-end failover convergence, adaptive
# measurement ingest, and the telemetry counter fast path.
benches=(
  "./internal/flowsim BenchmarkShardStep"
  "./internal/flowsim BenchmarkControllerStep"
  "./internal/netsim BenchmarkTransitAggregate"
  "./internal/fib BenchmarkFIBLookup"
  "./internal/fib BenchmarkFIBRecompile"
  "./internal/fib BenchmarkFIBDeltaPatch"
  "./internal/rib BenchmarkRIBChurn"
  ". BenchmarkFailoverConvergence"
  "./internal/adaptive BenchmarkAdaptiveIngest"
  "./internal/telemetry BenchmarkCounterAdd"
)

goversion=$(go env GOVERSION)

{
  printf '{\n'
  printf '  "schema": 1,\n'
  printf '  "date": "%s",\n' "$date_tag"
  printf '  "go": "%s",\n' "$goversion"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "benchmarks": [\n'
  first=1
  for entry in "${benches[@]}"; do
    pkg=${entry% *}
    name=${entry#* }
    echo "running $pkg $name..." >&2
    line=$(go test -run '^$' -bench "^${name}\$" -benchmem -benchtime "$benchtime" -count=1 "$pkg" |
      awk -v n="$name" '$1 ~ "^"n"(-[0-9]+)?$" {print; exit}')
    if [ -z "$line" ]; then
      echo "bench_snapshot: no result for $name in $pkg" >&2
      exit 1
    fi
    ns=$(awk '{for(i=1;i<=NF;i++) if($(i+1)=="ns/op"){print $i; exit}}' <<<"$line")
    bytes=$(awk '{for(i=1;i<=NF;i++) if($(i+1)=="B/op"){print $i; exit}}' <<<"$line")
    allocs=$(awk '{for(i=1;i<=NF;i++) if($(i+1)=="allocs/op"){print $i; exit}}' <<<"$line")
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    printf '    {"package": "vns%s", "name": "%s", "ns_per_op": %s, "bytes_per_op": %s, "allocs_per_op": %s}' \
      "${pkg#.}" "$name" "$ns" "${bytes:-0}" "${allocs:-0}"
  done
  printf '\n  ]\n}\n'
} >"$out"

echo "wrote $out" >&2
