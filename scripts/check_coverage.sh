#!/usr/bin/env bash
# Per-package coverage gate: every package listed in the baseline must
# report coverage within $COVERAGE_SLACK points of its recorded value.
# New tests raise the bar by regenerating the baseline:
#
#   go test -count=1 -cover ./... | awk '$1=="ok" {for(i=1;i<=NF;i++) \
#     if($i ~ /%$/){gsub(/%/,"",$i); print $2, $i}}' > scripts/coverage-baseline.txt
set -euo pipefail
cd "$(dirname "$0")/.."

slack=${COVERAGE_SLACK:-3.0}
baseline=scripts/coverage-baseline.txt
out=$(go test -count=1 -cover ./...)
printf '%s\n' "$out"

fail=0
while read -r pkg want; do
  got=$(printf '%s\n' "$out" | awk -v p="$pkg" \
    '$1=="ok" && $2==p {for(i=1;i<=NF;i++) if($i ~ /%$/){gsub(/%/,"",$i); print $i}}')
  if [ -z "$got" ]; then
    echo "COVERAGE MISSING: $pkg reported no coverage (baseline $want%)"
    fail=1
    continue
  fi
  if ! awk -v g="$got" -v w="$want" -v s="$slack" 'BEGIN{exit !(g+s >= w)}'; then
    echo "COVERAGE REGRESSION: $pkg at $got%, baseline $want% (slack $slack)"
    fail=1
  fi
done <"$baseline"

if [ "$fail" -ne 0 ]; then
  echo "coverage gate failed" >&2
  exit 1
fi
echo "coverage gate passed (${slack} slack against $(wc -l <"$baseline") baselined packages)"
