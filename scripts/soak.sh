#!/usr/bin/env bash
# Sustained-load soak driver: run the combined churn-at-scale +
# million-flow experiment for a wall duration, collect the self-scraped
# metrics JSONL, and summarize the stage-latency percentiles next to
# the most recent BENCH_<date>.json snapshot so one report covers both
# the steady-state (bench) and under-load (soak) numbers.
#
#   scripts/soak.sh                 # full soak: 400k prefixes, 1M flows, 30s
#   scripts/soak.sh -short          # CI smoke: 20k prefixes, 20k flows, 8s
#   SOAK_OUT=/tmp/x.jsonl scripts/soak.sh
#
# Exits nonzero if the run fails a soak gate (scrape gap, counter
# regression, flow conservation, stage additivity > 5%) — the binary
# prints "soak: PASS" or "soak: FAIL ..." as its last experiment line
# and sets its exit code to match, so CI can gate on this script alone.
set -euo pipefail
cd "$(dirname "$0")/.."

duration=30
prefixes=0   # 0 = 400,000
flows=0      # 0 = 1,000,000
scrape=1
if [[ "${1:-}" == "-short" ]]; then
  duration=8
  prefixes=20000
  flows=20000
  scrape=0.5
  shift
fi

out=${SOAK_OUT:-soak_$(date +%Y-%m-%d).jsonl}
report=$(mktemp)
trap 'rm -f "$report"' EXIT

status=0
go run ./cmd/experiments -run soak \
  -soak-duration "$duration" -soak-prefixes "$prefixes" -flows "$flows" \
  -soak-scrape "$scrape" -soak-out "$out" "$@" | tee "$report" || status=$?

# Belt and braces: even if the exit code is lost to a pipeline change,
# the absence of the PASS line fails the script.
grep -q '^soak: PASS$' "$report" || status=1

echo
echo "soak JSONL: $out ($(wc -l <"$out") scrapes)"

# Join with the latest bench snapshot, if one exists, so the soak
# percentiles land beside the per-op microbenchmark numbers.
latest_bench=$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [[ -n "$latest_bench" ]]; then
  echo "bench snapshot: $latest_bench"
  # No jq dependency: the snapshot schema is one benchmark per "name"/
  # "ns_per_op" pair, extracted with POSIX tools.
  grep -o '"name": *"[^"]*"\|"ns_per_op": *[0-9.]*' "$latest_bench" |
    sed 's/"name": *"\([^"]*\)"/\1/; s/"ns_per_op": *//' |
    paste - - | awk '{printf "  bench %-28s %12.1f ns/op\n", $1, $2}'
fi

exit "$status"
